//! Randomized round-trip property suite for the out-of-core tier: an
//! edge list packed through `pack_edge_list` and reopened as a mapped
//! [`SegmentStore`] must be observationally identical to the in-memory
//! [`TimeSeriesGraph`] built from the same list — same topology, same
//! per-pair series, same search results and stats, same active-origin
//! candidates. Also checks that corrupted or truncated segment files
//! are rejected at open time rather than misread.

use flowmotif_core::catalog::parse_motif;
use flowmotif_core::enumerate::count_instances;
use flowmotif_graph::io::load_time_series_graph;
use flowmotif_graph::segment::segment_path;
use flowmotif_graph::{
    pack_edge_list, GraphStore, NodeId, SegmentStore, TimeSeriesGraph, TimeWindow,
};
use flowmotif_util::{RngExt, SeedableRng, StdRng};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Temp path guard: removes the file or directory on drop.
struct Temp(PathBuf);
impl Drop for Temp {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn unique_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "flowmotif_prop_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A random multigraph edge list: `events` interactions over up to
/// `nodes` nodes, timestamps clustered so windows actually overlap,
/// duplicate `(u, v, t)` triples possible (exercises stable ordering).
fn random_edge_list(rng: &mut StdRng, nodes: u32, events: usize) -> String {
    let mut body = String::new();
    for _ in 0..events {
        let u = rng.random_range(0..nodes);
        let mut v = rng.random_range(0..nodes);
        if v == u {
            v = (v + 1) % nodes;
        }
        let t = rng.random_range(0i64..200);
        let f = rng.random_range(1i64..50) as f64;
        writeln!(body, "{u} {v} {t} {f}").unwrap();
    }
    body
}

/// Writes `body` to a temp edge list, builds the in-memory graph, packs
/// it with a deliberately tiny sort buffer (forcing multi-run external
/// merges), and reopens the result through the mmap-backed store.
fn build_both(body: &str, run_records: usize) -> (Temp, Temp, TimeSeriesGraph, SegmentStore) {
    let edges = Temp(unique_path("edges"));
    std::fs::write(&edges.0, body).unwrap();
    let mem = load_time_series_graph(&edges.0).unwrap();
    let dir = Temp(unique_path("seg"));
    let stats = pack_edge_list(&edges.0, &dir.0, run_records).unwrap();
    assert_eq!(stats.interactions as usize, mem.num_interactions());
    assert_eq!(stats.pairs as usize, mem.num_pairs());
    let seg = SegmentStore::open(&dir.0).unwrap();
    (edges, dir, mem, seg)
}

/// Asserts the two stores are observationally identical under the full
/// `GraphStore` surface plus the search pipeline.
fn assert_equivalent(mem: &TimeSeriesGraph, seg: &SegmentStore, rng: &mut StdRng) {
    assert_eq!(mem.num_nodes(), seg.num_nodes());
    assert_eq!(mem.num_pairs(), seg.num_pairs());
    assert_eq!(mem.num_interactions(), seg.num_interactions());
    assert_eq!(mem.time_span(), seg.time_span());

    for p in 0..mem.num_pairs() as u32 {
        assert_eq!(mem.pair(p), seg.pair(p), "pair {p} endpoints diverge");
        assert_eq!(mem.series(p).events(), seg.series(p).events(), "pair {p} series diverge");
    }
    for u in 0..mem.num_nodes() as NodeId {
        // Call through the trait: the inherent `TimeSeriesGraph` methods
        // of the same names have (deliberately) different signatures.
        let deg = GraphStore::out_degree(mem, u);
        assert_eq!(deg, seg.out_degree(u), "degree of {u}");
        for i in 0..deg {
            assert_eq!(GraphStore::out_pair_at(mem, u, i), seg.out_pair_at(u, i));
        }
        assert_eq!(mem.origin_active_span(u), seg.origin_active_span(u));
    }

    // Search results and the instrumentation counters must be
    // bit-identical: the segment path is the same algorithm over a
    // different byte layout, nothing more.
    for spec in ["M(3,2)", "M(3,3)", "M(4,3)", "M(4,4)B"] {
        let motif = parse_motif(spec, 25, 10.0).unwrap();
        let (mem_count, mem_stats) = count_instances(mem, &motif);
        let (seg_count, seg_stats) = count_instances(seg, &motif);
        assert_eq!(mem_count, seg_count, "{spec} instance count diverges");
        assert_eq!(mem_stats, seg_stats, "{spec} search stats diverge");
    }

    // The active-origin index must surface identical candidate sets for
    // arbitrary windows (including empty and out-of-range ones).
    let (mut mem_out, mut seg_out) = (Vec::new(), Vec::new());
    for _ in 0..32 {
        let start = rng.random_range(-20i64..220);
        let len = rng.random_range(0i64..80);
        let w = TimeWindow::new(start, start + len);
        mem.active_origins_in_range(w, 0..NodeId::MAX, &mut mem_out);
        seg.active_origins_in_range(w, 0..NodeId::MAX, &mut seg_out);
        assert_eq!(mem_out, seg_out, "active origins diverge in {w:?}");
    }
}

#[test]
fn randomized_pack_roundtrip_is_observationally_identical() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = rng.random_range(2u32..24);
        let events = rng.random_range(1usize..400);
        let body = random_edge_list(&mut rng, nodes, events);
        // Tiny run buffer: a few hundred events become many sorted runs,
        // exercising the k-way merge rather than the fits-in-one-buffer
        // fast path.
        let (_e, _d, mem, seg) = build_both(&body, 17);
        assert_equivalent(&mem, &seg, &mut rng);
    }
}

#[test]
fn single_run_and_multi_run_packings_agree() {
    let mut rng = StdRng::seed_from_u64(99);
    let body = random_edge_list(&mut rng, 12, 150);
    let (_e1, _d1, mem, one_run) = build_both(&body, usize::MAX);
    let (_e2, _d2, _, many_runs) = build_both(&body, 3);
    assert_equivalent(&mem, &one_run, &mut rng);
    assert_equivalent(&mem, &many_runs, &mut rng);
}

#[test]
fn corrupted_header_is_rejected() {
    let mut rng = StdRng::seed_from_u64(7);
    let body = random_edge_list(&mut rng, 8, 60);
    let (_e, dir, _, seg) = build_both(&body, 1 << 20);
    drop(seg);
    let path = segment_path(&dir.0);
    let clean = std::fs::read(&path).unwrap();
    // Flip one byte in every header word in turn: magic, version,
    // section descriptors, counts, checksum. Each corruption must be
    // caught at open time.
    for offset in (0..clean.len().min(136)).step_by(8) {
        let mut bytes = clean.clone();
        bytes[offset] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(SegmentStore::open(&path).is_err(), "corruption at byte {offset} was not detected");
    }
    // Restoring the original bytes makes the segment readable again.
    std::fs::write(&path, &clean).unwrap();
    assert!(SegmentStore::open(&path).is_ok());
}

#[test]
fn truncated_segment_is_rejected() {
    let mut rng = StdRng::seed_from_u64(8);
    let body = random_edge_list(&mut rng, 8, 60);
    let (_e, dir, _, seg) = build_both(&body, 1 << 20);
    drop(seg);
    let path = segment_path(&dir.0);
    let clean = std::fs::read(&path).unwrap();
    for keep in [0, 8, 64, 135, clean.len() / 2, clean.len() - 1] {
        std::fs::write(&path, &clean[..keep]).unwrap();
        assert!(SegmentStore::open(&path).is_err(), "truncation to {keep} bytes was not detected");
    }
}
