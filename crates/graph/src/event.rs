//! Basic value types: node/pair identifiers, timestamps, flows and the
//! `(t, f)` interaction element of the paper.

/// Identifier of a vertex in the interaction network.
///
/// Vertices are dense integers in `0..num_nodes`, which keeps adjacency
/// structures index-based and cache-friendly.
pub type NodeId = u32;

/// Identifier of a *connected node pair* `(u, v)` in the time-series graph
/// `G_T` — i.e. an edge of `G_T` (paper notation `E_T`).
pub type PairId = u32;

/// Timestamps are integers in an application-defined unit (the paper uses
/// seconds). The paper assumes a continuous time domain with unique
/// timestamps; we tolerate duplicates and order ties deterministically.
pub type Timestamp = i64;

/// Flow transferred by a single interaction (money, messages, passengers…).
/// Always positive in valid inputs.
pub type Flow = f64;

/// A flow interaction element `(t, f)` on an edge of the time-series graph
/// (paper Table 1: "flow interaction element on an edge of `E_T`").
///
/// `repr(C)` pins the layout to `time` followed by `flow` (16 bytes, both
/// fields 8-aligned): the out-of-core segment format stores event arrays
/// verbatim and reinterprets mapped bytes as `&[Event]`, which is only
/// sound with a defined, padding-free layout.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Event {
    /// Time at which the interaction occurred.
    pub time: Timestamp,
    /// Amount of flow transferred.
    pub flow: Flow,
}

impl Event {
    /// Creates a new interaction element.
    #[inline]
    pub fn new(time: Timestamp, flow: Flow) -> Self {
        Self { time, flow }
    }
}

impl From<(Timestamp, Flow)> for Event {
    #[inline]
    fn from((time, flow): (Timestamp, Flow)) -> Self {
        Self { time, flow }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_construction_and_conversion() {
        let e = Event::new(10, 5.0);
        assert_eq!(e.time, 10);
        assert_eq!(e.flow, 5.0);
        let f: Event = (10, 5.0).into();
        assert_eq!(e, f);
    }

    #[test]
    fn event_is_small() {
        // Events are stored in per-pair vectors by the million; keep them
        // two words.
        assert_eq!(std::mem::size_of::<Event>(), 16);
    }
}
