//! A sealed segment plus a small in-RAM delta, composed into one
//! [`GraphStore`] — the streaming engine's epoch view.
//!
//! [`OverlayStore`] glues two backings together:
//!
//! * a **base**: an immutable, memory-mapped
//!   [`SegmentStore`] holding the bulk of
//!   the graph (shareable read-only across processes), and
//! * a **delta**: an in-memory [`TimeSeriesGraph`] holding everything
//!   appended since the base was sealed.
//!
//! The contract that keeps reads trivial: **for any pair present in
//! both, the delta holds the pair's *full merged series*** (base events
//! included). A read then never merges two series — it picks one backing
//! per pair. The streaming engine maintains the invariant by copying a
//! base pair's events into its delta accumulator the first time the
//! pair is touched; untouched pairs (the overwhelming majority under a
//! small delta) are served straight from the map.
//!
//! # Composite pair ids
//!
//! With `B = base.num_pairs()`:
//!
//! * `p < B` addresses base pair `p`. If the pair was touched, its
//!   series (only) is redirected to the delta's merged copy — topology
//!   queries (`pair`, `pair_id`, out-lists) still resolve through the
//!   base, which stays authoritative for ids it owns.
//! * `p >= B` addresses a pair absent from the base:
//!   `new_pairs[p - B]` gives its delta-local id. `new_pairs` inherits
//!   the delta CSR's `(u, v)` order, so these composite ids are sorted
//!   by `(u, v)` too and `pair_id` can binary-search them.
//!
//! Out-lists interleave ids from both ranges sorted by target (in-lists
//! likewise, sorted by source); origins and targets that gained no new
//! pair keep the base's positional lists, so building an overlay is
//! O(delta), never O(base).

use crate::event::{NodeId, PairId, Timestamp};
use crate::segment::SegmentStore;
use crate::series::SeriesRef;
use crate::store::GraphStore;
use crate::tsgraph::TimeSeriesGraph;
use crate::window::TimeWindow;
use flowmotif_util::FxHashMap;
use std::sync::Arc;

/// An immutable composite view: sealed segment base + in-RAM delta (see
/// the module docs). Cheap to build — O(delta pairs) — and cheap to
/// share behind an `Arc`.
#[derive(Debug)]
pub struct OverlayStore {
    base: Arc<SegmentStore>,
    delta: TimeSeriesGraph,
    /// Base pair id → delta pair id, for pairs present in both (the
    /// delta copy is the full merged series).
    overridden: FxHashMap<PairId, PairId>,
    /// Delta-local ids of pairs absent from the base, in the delta's
    /// `(u, v)` CSR order; entry `i` is composite pair `B + i`.
    new_pairs: Vec<PairId>,
    /// Merged out-lists (composite ids, sorted by target) for exactly
    /// the origins that gained at least one new pair.
    merged_out: FxHashMap<NodeId, Vec<PairId>>,
    /// Merged in-lists (composite ids, sorted by source) for exactly
    /// the targets that gained at least one new pair.
    merged_in: FxHashMap<NodeId, Vec<PairId>>,
    num_nodes: usize,
    num_interactions: usize,
}

impl OverlayStore {
    /// Composes `base` and `delta`. The caller guarantees the overlay
    /// invariant: every delta pair that also exists in the base carries
    /// the full merged series (the constructor checks event counts in
    /// debug builds).
    pub fn new(base: Arc<SegmentStore>, delta: TimeSeriesGraph) -> Self {
        let b = base.num_pairs() as PairId;
        let mut overridden = FxHashMap::default();
        let mut new_pairs = Vec::new();
        let mut touched_origins: Vec<NodeId> = Vec::new();
        let mut delta_only_events = 0usize;
        for dp in 0..delta.num_pairs() as PairId {
            let (u, v) = GraphStore::pair(&delta, dp);
            match base.pair_id(u, v) {
                Some(bp) => {
                    let (dn, bn) = (GraphStore::series(&delta, dp).len(), base.series(bp).len());
                    debug_assert!(
                        dn >= bn,
                        "delta series of overridden pair ({u}, {v}) must include the base events"
                    );
                    delta_only_events += dn - bn;
                    overridden.insert(bp, dp);
                }
                None => {
                    delta_only_events += GraphStore::series(&delta, dp).len();
                    new_pairs.push(dp);
                    touched_origins.push(u);
                }
            }
        }
        touched_origins.sort_unstable();
        touched_origins.dedup();
        let base_degree =
            |u: NodeId| if (u as usize) < base.num_nodes() { base.out_degree(u) } else { 0 };
        let mut merged_out = FxHashMap::default();
        for &u in &touched_origins {
            let mut pairs: Vec<PairId> =
                (0..base_degree(u)).map(|i| base.out_pair_at(u, i)).collect();
            for (i, &dp) in new_pairs.iter().enumerate() {
                if GraphStore::pair(&delta, dp).0 == u {
                    pairs.push(b + i as PairId);
                }
            }
            // Composite ids do not follow target order across the two
            // ranges; restore the sorted-by-target contract.
            let (bs, ds) = (&base, &delta);
            pairs.sort_unstable_by_key(|&p| {
                if p < b {
                    bs.pair(p).1
                } else {
                    GraphStore::pair(ds, new_pairs[(p - b) as usize]).1
                }
            });
            merged_out.insert(u, pairs);
        }
        // Same construction for the transposed view: only targets that
        // gained a new pair need a merged in-list (overridden pairs keep
        // their base topology), so this too is O(delta), never O(base).
        let mut touched_targets: Vec<NodeId> =
            new_pairs.iter().map(|&dp| GraphStore::pair(&delta, dp).1).collect();
        touched_targets.sort_unstable();
        touched_targets.dedup();
        let base_in_degree =
            |v: NodeId| if (v as usize) < base.num_nodes() { base.in_degree(v) } else { 0 };
        let mut merged_in = FxHashMap::default();
        for &v in &touched_targets {
            let mut pairs: Vec<PairId> =
                (0..base_in_degree(v)).map(|i| base.in_pair_at(v, i)).collect();
            for (i, &dp) in new_pairs.iter().enumerate() {
                if GraphStore::pair(&delta, dp).1 == v {
                    pairs.push(b + i as PairId);
                }
            }
            // A (u, v) pair lives in exactly one id range, so sources
            // within one in-list are distinct and the key is total.
            let (bs, ds) = (&base, &delta);
            pairs.sort_unstable_by_key(|&p| {
                if p < b {
                    bs.pair(p).0
                } else {
                    GraphStore::pair(ds, new_pairs[(p - b) as usize]).0
                }
            });
            merged_in.insert(v, pairs);
        }
        let num_nodes = base.num_nodes().max(delta.num_nodes());
        let num_interactions = base.num_interactions() + delta_only_events;
        Self {
            base,
            delta,
            overridden,
            new_pairs,
            merged_out,
            merged_in,
            num_nodes,
            num_interactions,
        }
    }

    /// The sealed base segment.
    pub fn base(&self) -> &Arc<SegmentStore> {
        &self.base
    }

    /// The in-RAM delta graph (full merged series for touched base
    /// pairs, plain series for new pairs).
    pub fn delta(&self) -> &TimeSeriesGraph {
        &self.delta
    }

    /// The base may know fewer nodes than the composite view (the delta
    /// can introduce fresh node ids); never hand it one it doesn't own.
    #[inline]
    fn in_base(&self, u: NodeId) -> bool {
        (u as usize) < self.base.num_nodes()
    }

    /// Interactions resident only in the delta (new pairs plus the
    /// appended tail of touched base pairs) — the size publishes and
    /// reseals scale with.
    pub fn delta_interactions(&self) -> usize {
        self.num_interactions - self.base.num_interactions()
    }

    /// Streams every pair of the composite view in `(u, v)` order as
    /// `(u, v, series)`, resolving each pair to its authoritative
    /// backing — the reseal path's input.
    pub fn for_each_merged_series<F: FnMut(NodeId, NodeId, SeriesRef<'_>)>(&self, mut f: F) {
        let b = self.base.num_pairs() as PairId;
        let (mut bp, mut ni) = (0 as PairId, 0usize);
        loop {
            let bk = (bp < b).then(|| self.base.pair(bp));
            let nk = self.new_pairs.get(ni).map(|&dp| GraphStore::pair(&self.delta, dp));
            // The two id ranges partition the pair set, so keys never tie.
            let take_base = match (bk, nk) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(bkey), Some(nkey)) => bkey < nkey,
            };
            if take_base {
                let (u, v) = bk.unwrap();
                f(u, v, self.series(bp));
                bp += 1;
            } else {
                let (u, v) = nk.unwrap();
                f(u, v, GraphStore::series(&self.delta, self.new_pairs[ni]));
                ni += 1;
            }
        }
    }
}

impl GraphStore for OverlayStore {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_pairs(&self) -> usize {
        self.base.num_pairs() + self.new_pairs.len()
    }

    fn num_interactions(&self) -> usize {
        self.num_interactions
    }

    fn pair(&self, p: PairId) -> (NodeId, NodeId) {
        let b = self.base.num_pairs() as PairId;
        if p < b {
            self.base.pair(p)
        } else {
            GraphStore::pair(&self.delta, self.new_pairs[(p - b) as usize])
        }
    }

    fn series(&self, p: PairId) -> SeriesRef<'_> {
        let b = self.base.num_pairs() as PairId;
        if p < b {
            match self.overridden.get(&p) {
                Some(&dp) => GraphStore::series(&self.delta, dp),
                None => self.base.series(p),
            }
        } else {
            GraphStore::series(&self.delta, self.new_pairs[(p - b) as usize])
        }
    }

    fn out_degree(&self, u: NodeId) -> u32 {
        match self.merged_out.get(&u) {
            Some(pairs) => pairs.len() as u32,
            None if self.in_base(u) => self.base.out_degree(u),
            None => 0,
        }
    }

    fn out_pair_at(&self, u: NodeId, i: u32) -> PairId {
        match self.merged_out.get(&u) {
            Some(pairs) => pairs[i as usize],
            None => self.base.out_pair_at(u, i),
        }
    }

    fn out_target_at(&self, u: NodeId, i: u32) -> NodeId {
        match self.merged_out.get(&u) {
            Some(pairs) => self.pair(pairs[i as usize]).1,
            None => self.base.out_target_at(u, i),
        }
    }

    fn in_degree(&self, v: NodeId) -> u32 {
        match self.merged_in.get(&v) {
            Some(pairs) => pairs.len() as u32,
            None if self.in_base(v) => self.base.in_degree(v),
            None => 0,
        }
    }

    fn in_pair_at(&self, v: NodeId, i: u32) -> PairId {
        match self.merged_in.get(&v) {
            Some(pairs) => pairs[i as usize],
            None => self.base.in_pair_at(v, i),
        }
    }

    fn in_source_at(&self, v: NodeId, i: u32) -> NodeId {
        match self.merged_in.get(&v) {
            Some(pairs) => self.pair(pairs[i as usize]).0,
            None => self.base.in_source_at(v, i),
        }
    }

    fn pair_id(&self, u: NodeId, v: NodeId) -> Option<PairId> {
        if self.in_base(u) {
            if let Some(p) = self.base.pair_id(u, v) {
                return Some(p);
            }
        }
        let b = self.base.num_pairs() as PairId;
        self.new_pairs
            .binary_search_by_key(&(u, v), |&dp| GraphStore::pair(&self.delta, dp))
            .ok()
            .map(|i| b + i as PairId)
    }

    fn origin_active_span(&self, u: NodeId) -> Option<(Timestamp, Timestamp)> {
        // The delta span of a touched base pair covers its base events
        // too (full merged series), so the union is exact.
        let base_span = if self.in_base(u) { self.base.origin_active_span(u) } else { None };
        match (base_span, GraphStore::origin_active_span(&self.delta, u)) {
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
            (s, None) | (None, s) => s,
        }
    }

    fn active_origins_in_range(
        &self,
        w: TimeWindow,
        range: std::ops::Range<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        self.base.active_origins_in_range(w, range.clone(), out);
        let mut from_delta = Vec::new();
        GraphStore::active_origins_in_range(&self.delta, w, range, &mut from_delta);
        out.extend(from_delta);
        out.sort_unstable();
        out.dedup();
    }

    fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        match (self.base.time_span(), GraphStore::time_span(&self.delta)) {
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
            (s, None) | (None, s) => s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::segment::write_segment;
    use crate::Event;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "flowmotif-overlay-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    const BASE: [(NodeId, NodeId, Timestamp, f64); 6] = [
        (0, 1, 10, 5.0),
        (0, 1, 15, 7.0),
        (1, 2, 18, 20.0),
        (2, 0, 10, 10.0),
        (2, 3, 19, 5.0),
        (3, 0, 11, 10.0),
    ];
    const DELTA: [(NodeId, NodeId, Timestamp, f64); 4] = [
        (0, 1, 21, 3.0), // touches a base pair
        (1, 3, 23, 7.0), // new pair, existing origin
        (4, 2, 25, 1.0), // new pair, new origin
        (4, 2, 26, 2.0),
    ];

    fn build(edges: &[(NodeId, NodeId, Timestamp, f64)]) -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        b.extend_interactions(edges.iter().copied());
        b.build_time_series_graph()
    }

    /// The overlay with BASE sealed and DELTA on top, next to the
    /// in-memory graph of BASE ∪ DELTA it must be indistinguishable
    /// from.
    fn overlay_and_reference(tag: &str) -> (OverlayStore, TimeSeriesGraph) {
        let dir = tmp_dir(tag);
        write_segment(&build(&BASE), &dir).unwrap();
        let base = Arc::new(SegmentStore::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();

        // Delta invariant: touched base pairs carry their full series.
        let mut pairs: FxHashMap<(NodeId, NodeId), Vec<Event>> = FxHashMap::default();
        for &(u, v, t, f) in &DELTA {
            let entry = pairs.entry((u, v)).or_insert_with(|| {
                base.pair_id(u, v).map(|p| base.series(p).events().to_vec()).unwrap_or_default()
            });
            entry.push(Event { time: t, flow: f });
        }
        let num_nodes = 5;
        let delta = TimeSeriesGraph::from_pair_events(num_nodes, pairs.into_iter().collect());

        let mut all: Vec<_> = BASE.to_vec();
        all.extend_from_slice(&DELTA);
        (OverlayStore::new(base, delta), build(&all))
    }

    #[test]
    fn overlay_is_indistinguishable_from_the_merged_graph() {
        let (ov, want) = overlay_and_reference("equiv");
        assert_eq!(ov.num_nodes(), want.num_nodes());
        assert_eq!(GraphStore::num_pairs(&ov), want.num_pairs());
        assert_eq!(GraphStore::num_interactions(&ov), want.num_interactions());
        assert_eq!(GraphStore::time_span(&ov), TimeSeriesGraph::time_span(&want));
        for u in 0..want.num_nodes() as NodeId {
            assert_eq!(ov.out_degree(u), GraphStore::out_degree(&want, u), "degree of {u}");
            assert_eq!(
                ov.origin_active_span(u),
                TimeSeriesGraph::origin_active_span(&want, u),
                "span of {u}"
            );
            let deg = ov.out_degree(u);
            for i in 0..deg {
                let (op, wp) = (ov.out_pair_at(u, i), GraphStore::out_pair_at(&want, u, i));
                assert_eq!(ov.pair(op), GraphStore::pair(&want, wp), "pair {i} of {u}");
                assert_eq!(
                    ov.out_target_at(u, i),
                    GraphStore::out_target_at(&want, u, i),
                    "target {i} of {u}"
                );
                let (os, ws) = (ov.series(op), GraphStore::series(&want, wp));
                assert_eq!(os.events(), ws.events(), "series of {:?}", ov.pair(op));
                let (u2, v2) = ov.pair(op);
                assert_eq!(ov.pair_id(u2, v2), Some(op));
            }
            assert_eq!(ov.in_degree(u), GraphStore::in_degree(&want, u), "in-degree of {u}");
            for i in 0..ov.in_degree(u) {
                let (op, wp) = (ov.in_pair_at(u, i), GraphStore::in_pair_at(&want, u, i));
                assert_eq!(ov.pair(op), GraphStore::pair(&want, wp), "in-pair {i} of {u}");
                assert_eq!(
                    ov.in_source_at(u, i),
                    GraphStore::in_source_at(&want, u, i),
                    "in-source {i} of {u}"
                );
            }
        }
        assert_eq!(ov.pair_id(0, 3), None);
        assert_eq!(ov.pair_id(9, 9), None);
    }

    #[test]
    fn overlay_activity_matches_the_merged_graph() {
        let (ov, want) = overlay_and_reference("activity");
        let windows = [
            TimeWindow::new(0, 30),
            TimeWindow::new(21, 26),
            TimeWindow::new(10, 15),
            TimeWindow::new(40, 50),
        ];
        let mut got = Vec::new();
        for w in windows {
            ov.active_origins_in_range(w, 0..want.num_nodes() as NodeId, &mut got);
            // Both are conservative supersets; after the exact-span
            // filter they must agree here (spans are exact per origin).
            assert_eq!(got, want.active_origins_in(w), "window {w:?}");
        }
    }

    #[test]
    fn merged_series_stream_visits_every_pair_in_order() {
        let (ov, want) = overlay_and_reference("stream");
        let mut seen = Vec::new();
        ov.for_each_merged_series(|u, v, s| seen.push(((u, v), s.events().to_vec())));
        assert_eq!(seen.len(), want.num_pairs());
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "must stream in (u, v) order");
        for ((u, v), events) in seen {
            let p = TimeSeriesGraph::pair_id(&want, u, v).unwrap();
            assert_eq!(events, TimeSeriesGraph::series(&want, p).events(), "({u}, {v})");
        }
    }

    #[test]
    fn empty_delta_passes_reads_through() {
        let dir = tmp_dir("passthrough");
        let g = build(&BASE);
        write_segment(&g, &dir).unwrap();
        let base = Arc::new(SegmentStore::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
        let ov = OverlayStore::new(Arc::clone(&base), TimeSeriesGraph::default());
        assert_eq!(GraphStore::num_pairs(&ov), base.num_pairs());
        assert_eq!(GraphStore::num_interactions(&ov), base.num_interactions());
        assert_eq!(ov.delta_interactions(), 0);
        for p in 0..base.num_pairs() as PairId {
            assert_eq!(ov.series(p).events(), base.series(p).events());
        }
    }
}
