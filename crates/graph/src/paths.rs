//! Time-respecting paths (Kempe–Kleinberg–Kumar, the temporal-network
//! foundation the paper's related work builds on, §2): a path is
//! time-respecting when consecutive hops use strictly increasing
//! timestamps. Flow motif instances are time-respecting by construction;
//! these utilities answer the simpler reachability questions analysts ask
//! next ("could these funds have reached that account at all?").

use crate::event::{NodeId, Timestamp};
use crate::tsgraph::TimeSeriesGraph;
use std::collections::BinaryHeap;

/// Earliest-arrival times from `source`, departing no earlier than
/// `t_start`: `result[v]` is the smallest timestamp of the last hop of a
/// time-respecting path `source -> … -> v`, or `None` if unreachable.
/// `result[source]` is `Some(t_start)` by convention.
///
/// Dijkstra-like label setting on (arrival time, node); each pair's
/// series is binary-searched for the first usable departure, so the cost
/// is `O(|E_T| log |E| + |V| log |V|)`.
pub fn earliest_arrival(
    g: &TimeSeriesGraph,
    source: NodeId,
    t_start: Timestamp,
) -> Vec<Option<Timestamp>> {
    let n = g.num_nodes();
    let mut arrival: Vec<Option<Timestamp>> = vec![None; n];
    if (source as usize) >= n {
        return arrival;
    }
    arrival[source as usize] = Some(t_start);
    // Max-heap on Reverse(time) = min-heap on arrival time.
    let mut heap: BinaryHeap<(std::cmp::Reverse<Timestamp>, NodeId)> = BinaryHeap::new();
    heap.push((std::cmp::Reverse(t_start), source));
    while let Some((std::cmp::Reverse(t), u)) = heap.pop() {
        if arrival[u as usize] != Some(t) {
            continue; // stale entry
        }
        for (p, v) in g.out_pairs(u) {
            let s = g.series(p);
            // First interaction departing strictly after arrival (at the
            // source itself, departures at exactly t_start are allowed).
            let idx =
                if u == source && t == t_start { s.idx_at_or_after(t) } else { s.idx_after(t) };
            if idx >= s.len() {
                continue;
            }
            let depart = s.time(idx);
            if arrival[v as usize].is_none_or(|cur| depart < cur) {
                arrival[v as usize] = Some(depart);
                heap.push((std::cmp::Reverse(depart), v));
            }
        }
    }
    arrival
}

/// Whether a time-respecting path `from -> … -> to` exists that departs
/// at or after `t_start` and arrives by `deadline`.
pub fn is_time_reachable(
    g: &TimeSeriesGraph,
    from: NodeId,
    to: NodeId,
    t_start: Timestamp,
    deadline: Timestamp,
) -> bool {
    if from == to {
        return true;
    }
    earliest_arrival(g, from, t_start)
        .get(to as usize)
        .copied()
        .flatten()
        .is_some_and(|t| t <= deadline)
}

/// All nodes reachable from `source` by time-respecting paths departing
/// at or after `t_start` and arriving within `delta` — the "where could
/// this flow have gone in a δ window" query.
pub fn reachable_set(
    g: &TimeSeriesGraph,
    source: NodeId,
    t_start: Timestamp,
    delta: Timestamp,
) -> Vec<NodeId> {
    let deadline = t_start.saturating_add(delta);
    earliest_arrival(g, source, t_start)
        .iter()
        .enumerate()
        .filter_map(|(v, t)| {
            t.filter(|&t| t <= deadline && v != source as usize).map(|_| v as NodeId)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 0 -> 1 at t=5; 1 -> 2 at t=3 (too early) and t=8 (usable);
    /// 2 -> 3 at t=20.
    fn chain() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 5i64, 1.0),
            (1, 2, 3, 1.0),
            (1, 2, 8, 1.0),
            (2, 3, 20, 1.0),
        ]);
        b.build_time_series_graph()
    }

    #[test]
    fn earliest_arrival_respects_time_order() {
        let g = chain();
        let a = earliest_arrival(&g, 0, 0);
        assert_eq!(a[0], Some(0));
        assert_eq!(a[1], Some(5));
        // The t=3 interaction on (1,2) is before arrival at 1.
        assert_eq!(a[2], Some(8));
        assert_eq!(a[3], Some(20));
    }

    #[test]
    fn departure_at_start_time_is_allowed_at_source_only() {
        let g = chain();
        // Starting exactly at t=5: the 0->1 hop at t=5 is usable.
        let a = earliest_arrival(&g, 0, 5);
        assert_eq!(a[1], Some(5));
        // But from node 1 arriving at 5, the next hop must be strictly
        // later (strict time-respecting order, as in motif instances).
        let a1 = earliest_arrival(&g, 1, 3);
        assert_eq!(a1[2], Some(3), "departure at exactly t_start from the source");
    }

    #[test]
    fn late_start_cuts_reachability() {
        let g = chain();
        let a = earliest_arrival(&g, 0, 6);
        assert_eq!(a[1], None, "the only 0->1 interaction is at t=5");
        assert_eq!(a[2], None);
    }

    #[test]
    fn reachability_with_deadline() {
        let g = chain();
        assert!(is_time_reachable(&g, 0, 2, 0, 8));
        assert!(!is_time_reachable(&g, 0, 2, 0, 7));
        assert!(is_time_reachable(&g, 0, 3, 0, 20));
        assert!(is_time_reachable(&g, 5, 5, 0, 0), "trivial self-reachability");
    }

    #[test]
    fn reachable_set_within_delta() {
        let g = chain();
        assert_eq!(reachable_set(&g, 0, 0, 8), vec![1, 2]);
        assert_eq!(reachable_set(&g, 0, 0, 100), vec![1, 2, 3]);
        assert_eq!(reachable_set(&g, 0, 0, 4), Vec::<NodeId>::new());
    }

    #[test]
    fn unknown_source_is_handled() {
        let g = chain();
        let a = earliest_arrival(&g, 99, 0);
        assert!(a.iter().all(Option::is_none));
    }

    #[test]
    fn cycle_does_not_loop_forever() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 1.0), (1, 0, 2, 1.0), (0, 1, 3, 1.0)]);
        let g = b.build_time_series_graph();
        let a = earliest_arrival(&g, 0, 0);
        assert_eq!(a[1], Some(1));
    }
}
