//! Minimal read-only memory mapping, dependency-free.
//!
//! The segment backend views a packed file as `&[u8]` without reading it
//! into the heap. On unix this is a `PROT_READ`/`MAP_PRIVATE` `mmap(2)`
//! (declared directly against libc, which `std` already links); elsewhere
//! the file is read into owned storage so the rest of the crate stays
//! portable. Both paths guarantee the returned bytes are **8-aligned**,
//! which is what lets [`crate::segment::SegmentStore`] reinterpret
//! sections as `u32`/`u64`/`i64`/`f64`/`Event` slices safely.

use std::fs::File;
use std::io;

/// A read-only byte view of an open file.
#[derive(Debug)]
pub(crate) struct Mmap {
    backing: Backing,
    len: usize,
}

#[derive(Debug)]
enum Backing {
    /// A live `mmap(2)` region (unix only), unmapped on drop.
    #[cfg(unix)]
    Mapped(*const u8),
    /// Owned fallback. `u64` storage keeps the base pointer 8-aligned,
    /// which a `Vec<u8>` would not.
    Owned(Vec<u64>),
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Maps `file` read-only. Empty files yield an empty view (mapping a
    /// zero-length file is an error on most platforms).
    pub(crate) fn map(file: &File) -> io::Result<Self> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Self { backing: Backing::Owned(Vec::new()), len: 0 });
        }
        Self::map_nonempty(file, len)
    }

    #[cfg(unix)]
    fn map_nonempty(file: &File, len: usize) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        crate::metrics::SEGMENT_MAPPED_BYTES.add(len as u64);
        Ok(Self { backing: Backing::Mapped(ptr as *const u8), len })
    }

    #[cfg(not(unix))]
    fn map_nonempty(file: &File, len: usize) -> io::Result<Self> {
        use std::io::Read;
        let mut words = vec![0u64; len.div_ceil(8)];
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        let mut f = file;
        f.read_exact(bytes)?;
        crate::metrics::SEGMENT_MAPPED_BYTES.add(len as u64);
        Ok(Self { backing: Backing::Owned(words), len })
    }

    /// The view's length in bytes.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The mapped bytes. The base pointer is 8-aligned (page-aligned on
    /// the mmap path, `u64`-backed on the owned path).
    #[inline]
    pub(crate) fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped(ptr) => unsafe { std::slice::from_raw_parts(*ptr, self.len) },
            Backing::Owned(words) => unsafe {
                std::slice::from_raw_parts(words.as_ptr() as *const u8, self.len)
            },
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            crate::metrics::SEGMENT_MAPPED_BYTES.sub(self.len as u64);
        }
        #[cfg(unix)]
        if let Backing::Mapped(ptr) = self.backing {
            unsafe {
                sys::munmap(ptr as *mut std::os::raw::c_void, self.len);
            }
        }
    }
}

// SAFETY: the region is immutable for the lifetime of the map (private,
// read-only), so shared access from any thread is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("flowmotif-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn maps_file_contents() {
        let p = tmp("basic", b"hello segment");
        let m = Mmap::map(&File::open(&p).unwrap()).unwrap();
        assert_eq!(m.bytes(), b"hello segment");
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0, "base must be 8-aligned");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_view() {
        let p = tmp("empty", b"");
        let m = Mmap::map(&File::open(&p).unwrap()).unwrap();
        assert!(m.bytes().is_empty());
        std::fs::remove_file(p).unwrap();
    }
}
