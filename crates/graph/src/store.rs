//! The storage abstraction under [`TimeSeriesGraph`]: everything the
//! two-phase search reads from a graph, as a trait.
//!
//! The motif algorithms (phase P1 structural matching, phase P2
//! enumeration, the DP module, the parallel drivers) consume a graph
//! purely through reads: CSR topology (how many out-pairs a node has and
//! which pair sits at each position), per-pair `(time, flow)` series with
//! flow prefix sums, and the activity metadata that prunes
//! window-bounded searches. [`GraphStore`] captures exactly that surface,
//! so the same search code runs unchanged against
//!
//! * the in-memory [`TimeSeriesGraph`] (`Vec`-backed, mutable), and
//! * the file-backed [`crate::segment::SegmentStore`] (a read-only
//!   memory map over a packed segment file), and
//! * the [`crate::overlay::OverlayStore`] (a sealed segment plus a small
//!   in-RAM delta — the streaming engine's epoch view).
//!
//! # Positional out-pair access
//!
//! The trait addresses a node's out-pairs by *position* (`out_degree` /
//! `out_pair_at`) instead of exposing a contiguous `Range<PairId>`:
//! composite stores (segment + delta overlay) interleave pair ids from
//! two backings, so their out-lists are sorted by target but not
//! contiguous in id space. Contiguous backends implement `out_pair_at`
//! as `offset + i`; the hub-splitting parallel scheduler partitions
//! positions, which every backend can serve.

use crate::event::{NodeId, PairId, Timestamp};
use crate::series::SeriesRef;
use crate::tsgraph::TimeSeriesGraph;
use crate::window::TimeWindow;

/// Read-only storage interface of a time-series graph (see the module
/// docs). All methods must be consistent with each other: `pair`,
/// `series`, `out_degree`/`out_pair_at` and `pair_id` describe one CSR
/// view whose pairs are sorted by `(u, v)`, and the activity methods are
/// conservative exactly like [`TimeSeriesGraph`]'s
/// (`active_origins_in_range` returns a superset of the truly active
/// origins, each of which passes `origin_active_in`).
pub trait GraphStore {
    /// Number of vertices `|V|`.
    fn num_nodes(&self) -> usize;

    /// Number of connected node pairs `|E_T|`.
    fn num_pairs(&self) -> usize;

    /// Number of underlying interactions `|E|`.
    fn num_interactions(&self) -> usize;

    /// The `(u, v)` endpoints of pair `p`.
    fn pair(&self, p: PairId) -> (NodeId, NodeId);

    /// The interaction series on pair `p`, as a borrowed view.
    fn series(&self, p: PairId) -> SeriesRef<'_>;

    /// Out-degree of `u` in `G_T` (number of distinct targets).
    fn out_degree(&self, u: NodeId) -> u32;

    /// The pair at position `i` (`0 <= i < out_degree(u)`) of `u`'s
    /// out-list, which is sorted by target id.
    fn out_pair_at(&self, u: NodeId, i: u32) -> PairId;

    /// The target node at position `i` of `u`'s out-list. Equivalent to
    /// `pair(out_pair_at(u, i)).1`; backends with a structure-of-arrays
    /// id column override it so the worst-case-optimal intersection
    /// touches only node ids (no `(u, v)` tuple loads).
    #[inline]
    fn out_target_at(&self, u: NodeId, i: u32) -> NodeId {
        self.pair(self.out_pair_at(u, i)).1
    }

    /// In-degree of `v` in `G_T` (number of distinct sources).
    fn in_degree(&self, v: NodeId) -> u32;

    /// The pair at position `i` (`0 <= i < in_degree(v)`) of `v`'s
    /// in-list, which is sorted by source id. Positional for the same
    /// reason as [`GraphStore::out_pair_at`]: composite stores interleave
    /// pair ids from two backings.
    fn in_pair_at(&self, v: NodeId, i: u32) -> PairId;

    /// The source node at position `i` of `v`'s in-list. Equivalent to
    /// `pair(in_pair_at(v, i)).0`; backends override it with their SoA
    /// id column (see [`GraphStore::out_target_at`]).
    #[inline]
    fn in_source_at(&self, v: NodeId, i: u32) -> NodeId {
        self.pair(self.in_pair_at(v, i)).0
    }

    /// Looks up the pair id of edge `(u, v)`.
    fn pair_id(&self, u: NodeId, v: NodeId) -> Option<PairId>;

    /// The active interval `[min_time, max_time]` of `u`'s out-edge
    /// interactions, or `None` if `u` has none.
    fn origin_active_span(&self, u: NodeId) -> Option<(Timestamp, Timestamp)>;

    /// Whether origin `u` *may* have an out-edge interaction inside `w`
    /// (conservative: true iff `u`'s active interval overlaps `w`).
    #[inline]
    fn origin_active_in(&self, u: NodeId, w: TimeWindow) -> bool {
        self.origin_active_span(u).is_some_and(|(lo, hi)| lo <= w.end && hi >= w.start)
    }

    /// Sorted, deduplicated candidate origins with out-edge activity
    /// inside the closed window `w`, restricted to `range`, written into
    /// the caller's buffer (cleared first). A superset of the origins
    /// with an actual in-window out-event; every returned origin passes
    /// [`GraphStore::origin_active_in`].
    fn active_origins_in_range(
        &self,
        w: TimeWindow,
        range: std::ops::Range<NodeId>,
        out: &mut Vec<NodeId>,
    );

    /// Earliest and latest timestamp over all series, or `None` if the
    /// graph has no interactions.
    fn time_span(&self) -> Option<(Timestamp, Timestamp)>;
}

impl GraphStore for TimeSeriesGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        TimeSeriesGraph::num_nodes(self)
    }

    #[inline]
    fn num_pairs(&self) -> usize {
        TimeSeriesGraph::num_pairs(self)
    }

    #[inline]
    fn num_interactions(&self) -> usize {
        TimeSeriesGraph::num_interactions(self)
    }

    #[inline]
    fn pair(&self, p: PairId) -> (NodeId, NodeId) {
        TimeSeriesGraph::pair(self, p)
    }

    #[inline]
    fn series(&self, p: PairId) -> SeriesRef<'_> {
        TimeSeriesGraph::series(self, p).as_ref()
    }

    #[inline]
    fn out_degree(&self, u: NodeId) -> u32 {
        TimeSeriesGraph::out_pair_range(self, u).len() as u32
    }

    #[inline]
    fn out_pair_at(&self, u: NodeId, i: u32) -> PairId {
        TimeSeriesGraph::out_pair_range(self, u).start + i
    }

    #[inline]
    fn out_target_at(&self, u: NodeId, i: u32) -> NodeId {
        TimeSeriesGraph::out_target_at(self, u, i)
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> u32 {
        TimeSeriesGraph::in_degree(self, v)
    }

    #[inline]
    fn in_pair_at(&self, v: NodeId, i: u32) -> PairId {
        TimeSeriesGraph::in_pair_at(self, v, i)
    }

    #[inline]
    fn in_source_at(&self, v: NodeId, i: u32) -> NodeId {
        TimeSeriesGraph::in_source_at(self, v, i)
    }

    #[inline]
    fn pair_id(&self, u: NodeId, v: NodeId) -> Option<PairId> {
        TimeSeriesGraph::pair_id(self, u, v)
    }

    #[inline]
    fn origin_active_span(&self, u: NodeId) -> Option<(Timestamp, Timestamp)> {
        TimeSeriesGraph::origin_active_span(self, u)
    }

    #[inline]
    fn origin_active_in(&self, u: NodeId, w: TimeWindow) -> bool {
        TimeSeriesGraph::origin_active_in(self, u, w)
    }

    #[inline]
    fn active_origins_in_range(
        &self,
        w: TimeWindow,
        range: std::ops::Range<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        TimeSeriesGraph::active_origins_in_range(self, w, range, out);
    }

    #[inline]
    fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        TimeSeriesGraph::time_span(self)
    }
}

/// Forwarding impls so references and shared handles are stores too —
/// callers holding an `Arc<TimeSeriesGraph>` (the streaming engine's
/// snapshots) or an `Arc<SegmentStore>` pass them to the generic search
/// drivers directly.
macro_rules! forward_graph_store {
    ($ty:ty) => {
        impl<T: GraphStore + ?Sized> GraphStore for $ty {
            #[inline]
            fn num_nodes(&self) -> usize {
                (**self).num_nodes()
            }
            #[inline]
            fn num_pairs(&self) -> usize {
                (**self).num_pairs()
            }
            #[inline]
            fn num_interactions(&self) -> usize {
                (**self).num_interactions()
            }
            #[inline]
            fn pair(&self, p: PairId) -> (NodeId, NodeId) {
                (**self).pair(p)
            }
            #[inline]
            fn series(&self, p: PairId) -> SeriesRef<'_> {
                (**self).series(p)
            }
            #[inline]
            fn out_degree(&self, u: NodeId) -> u32 {
                (**self).out_degree(u)
            }
            #[inline]
            fn out_pair_at(&self, u: NodeId, i: u32) -> PairId {
                (**self).out_pair_at(u, i)
            }
            #[inline]
            fn out_target_at(&self, u: NodeId, i: u32) -> NodeId {
                (**self).out_target_at(u, i)
            }
            #[inline]
            fn in_degree(&self, v: NodeId) -> u32 {
                (**self).in_degree(v)
            }
            #[inline]
            fn in_pair_at(&self, v: NodeId, i: u32) -> PairId {
                (**self).in_pair_at(v, i)
            }
            #[inline]
            fn in_source_at(&self, v: NodeId, i: u32) -> NodeId {
                (**self).in_source_at(v, i)
            }
            #[inline]
            fn pair_id(&self, u: NodeId, v: NodeId) -> Option<PairId> {
                (**self).pair_id(u, v)
            }
            #[inline]
            fn origin_active_span(&self, u: NodeId) -> Option<(Timestamp, Timestamp)> {
                (**self).origin_active_span(u)
            }
            #[inline]
            fn origin_active_in(&self, u: NodeId, w: TimeWindow) -> bool {
                (**self).origin_active_in(u, w)
            }
            #[inline]
            fn active_origins_in_range(
                &self,
                w: TimeWindow,
                range: std::ops::Range<NodeId>,
                out: &mut Vec<NodeId>,
            ) {
                (**self).active_origins_in_range(w, range, out)
            }
            #[inline]
            fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
                (**self).time_span()
            }
        }
    };
}

forward_graph_store!(&T);
forward_graph_store!(std::sync::Arc<T>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn fig5() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        for (u, v, t, f) in [
            (0u32, 1u32, 13i64, 5.0),
            (0, 1, 15, 7.0),
            (2, 0, 10, 10.0),
            (3, 2, 1, 2.0),
            (3, 2, 3, 5.0),
            (3, 0, 11, 10.0),
            (1, 2, 18, 20.0),
            (2, 3, 19, 5.0),
            (2, 3, 21, 4.0),
            (1, 3, 23, 7.0),
        ] {
            b.add_interaction(u, v, t, f);
        }
        b.build_time_series_graph()
    }

    /// Exercises the trait surface through a generic function, pinned
    /// against the inherent API of the in-memory backend.
    fn check_store<S: GraphStore>(s: &S, g: &TimeSeriesGraph) {
        assert_eq!(s.num_nodes(), g.num_nodes());
        assert_eq!(s.num_pairs(), g.num_pairs());
        assert_eq!(s.num_interactions(), g.num_interactions());
        assert_eq!(s.time_span(), g.time_span());
        for p in 0..g.num_pairs() as PairId {
            assert_eq!(s.pair(p), g.pair(p));
            assert_eq!(s.series(p).events(), g.series(p).events());
            assert_eq!(s.series(p).total_flow(), g.series(p).total_flow());
        }
        for u in 0..g.num_nodes() as NodeId {
            assert_eq!(s.out_degree(u) as usize, g.out_degree(u));
            let r = g.out_pair_range(u);
            for i in 0..s.out_degree(u) {
                assert_eq!(s.out_pair_at(u, i), r.start + i);
            }
            assert_eq!(s.origin_active_span(u), g.origin_active_span(u));
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(s.pair_id(u, v), g.pair_id(u, v));
            }
        }
        // The in-adjacency is the exact transpose of the out-adjacency:
        // every pair appears in its target's in-list exactly once, the
        // list is sorted by source, and the SoA id columns agree with
        // the `(u, v)` tuples.
        let mut in_pairs = 0usize;
        for v in 0..g.num_nodes() as NodeId {
            let deg = s.in_degree(v);
            let mut prev_src = None;
            for i in 0..deg {
                let p = s.in_pair_at(v, i);
                let (src, tgt) = s.pair(p);
                assert_eq!(tgt, v, "pair {p} in the in-list of {v}");
                assert_eq!(s.in_source_at(v, i), src);
                assert!(prev_src < Some(src), "in-list of {v} sorted by source");
                prev_src = Some(src);
                in_pairs += 1;
            }
        }
        assert_eq!(in_pairs, s.num_pairs(), "every pair appears in one in-list");
        for u in 0..g.num_nodes() as NodeId {
            for i in 0..s.out_degree(u) {
                assert_eq!(s.out_target_at(u, i), s.pair(s.out_pair_at(u, i)).1);
            }
        }
        for (a, b) in [(0, 5), (10, 15), (16, 25), (24, 40), (i64::MIN, i64::MAX)] {
            let w = TimeWindow::new(a, b);
            let mut got = Vec::new();
            s.active_origins_in_range(w, 0..NodeId::MAX, &mut got);
            assert_eq!(got, g.active_origins_in(w), "window [{a},{b}]");
            for u in 0..g.num_nodes() as NodeId {
                assert_eq!(s.origin_active_in(u, w), g.origin_active_in(u, w));
            }
        }
    }

    #[test]
    fn in_memory_backend_implements_the_trait_faithfully() {
        let g = fig5();
        check_store(&g, &g);
    }

    #[test]
    fn default_origin_active_in_matches_the_span() {
        // The provided default (span overlap) agrees with the in-memory
        // override on every window.
        struct Shim<'a>(&'a TimeSeriesGraph);
        impl GraphStore for Shim<'_> {
            fn num_nodes(&self) -> usize {
                GraphStore::num_nodes(self.0)
            }
            fn num_pairs(&self) -> usize {
                GraphStore::num_pairs(self.0)
            }
            fn num_interactions(&self) -> usize {
                GraphStore::num_interactions(self.0)
            }
            fn pair(&self, p: PairId) -> (NodeId, NodeId) {
                GraphStore::pair(self.0, p)
            }
            fn series(&self, p: PairId) -> SeriesRef<'_> {
                GraphStore::series(self.0, p)
            }
            fn out_degree(&self, u: NodeId) -> u32 {
                GraphStore::out_degree(self.0, u)
            }
            fn out_pair_at(&self, u: NodeId, i: u32) -> PairId {
                GraphStore::out_pair_at(self.0, u, i)
            }
            fn in_degree(&self, v: NodeId) -> u32 {
                GraphStore::in_degree(self.0, v)
            }
            fn in_pair_at(&self, v: NodeId, i: u32) -> PairId {
                GraphStore::in_pair_at(self.0, v, i)
            }
            fn pair_id(&self, u: NodeId, v: NodeId) -> Option<PairId> {
                GraphStore::pair_id(self.0, u, v)
            }
            fn origin_active_span(&self, u: NodeId) -> Option<(Timestamp, Timestamp)> {
                GraphStore::origin_active_span(self.0, u)
            }
            fn active_origins_in_range(
                &self,
                w: TimeWindow,
                range: std::ops::Range<NodeId>,
                out: &mut Vec<NodeId>,
            ) {
                GraphStore::active_origins_in_range(self.0, w, range, out)
            }
            fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
                GraphStore::time_span(self.0)
            }
        }
        let g = fig5();
        let s = Shim(&g);
        for (a, b) in [(0, 5), (10, 15), (16, 25), (24, 40)] {
            let w = TimeWindow::new(a, b);
            for u in 0..g.num_nodes() as NodeId {
                assert_eq!(s.origin_active_in(u, w), g.origin_active_in(u, w), "[{a},{b}] u={u}");
            }
        }
    }
}
