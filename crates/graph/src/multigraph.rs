//! The raw temporal multigraph `G(V, E)` of the paper (§3, Fig. 2).
//!
//! Every interaction is a directed edge `u -> v` carrying a timestamp and a
//! flow. Multiple parallel edges between the same pair are the norm — they
//! are what flow motifs aggregate over.

use crate::event::{Flow, NodeId, Timestamp};

/// A single timestamped flow transfer `u -> v` (one edge of the multigraph).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interaction {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Time of the transfer.
    pub time: Timestamp,
    /// Amount transferred.
    pub flow: Flow,
}

impl Interaction {
    /// Creates a new interaction.
    #[inline]
    pub fn new(from: NodeId, to: NodeId, time: Timestamp, flow: Flow) -> Self {
        Self { from, to, time, flow }
    }
}

/// A directed temporal multigraph: the input representation `G(V, E)`.
///
/// This is a thin, append-only edge list. Motif algorithms never run on it
/// directly; convert to a [`crate::TimeSeriesGraph`] first (the conversion
/// is what the paper calls "merging parallel edges into time series").
#[derive(Debug, Clone, Default)]
pub struct TemporalMultigraph {
    num_nodes: usize,
    interactions: Vec<Interaction>,
}

impl TemporalMultigraph {
    /// Creates an empty multigraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty multigraph that will hold at least `nodes` vertices
    /// and reserves room for `interactions` edges.
    pub fn with_capacity(nodes: usize, interactions: usize) -> Self {
        Self { num_nodes: nodes, interactions: Vec::with_capacity(interactions) }
    }

    /// Appends an interaction, growing the vertex set as needed.
    pub fn push(&mut self, i: Interaction) {
        let hi = i.from.max(i.to) as usize + 1;
        if hi > self.num_nodes {
            self.num_nodes = hi;
        }
        self.interactions.push(i);
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of multigraph edges `|E|` (interactions).
    #[inline]
    pub fn num_interactions(&self) -> usize {
        self.interactions.len()
    }

    /// All interactions in insertion order.
    #[inline]
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    /// Mutable access to the interactions, e.g. for the flow-permutation
    /// null model of the significance experiment (paper §6.3).
    #[inline]
    pub fn interactions_mut(&mut self) -> &mut [Interaction] {
        &mut self.interactions
    }

    /// Consumes the graph and returns its interactions.
    pub fn into_interactions(self) -> Vec<Interaction> {
        self.interactions
    }

    /// Earliest and latest timestamp, or `None` for an empty graph.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let first = self.interactions.iter().map(|i| i.time).min()?;
        let last = self.interactions.iter().map(|i| i.time).max()?;
        Some((first, last))
    }

    /// Total flow over all interactions.
    pub fn total_flow(&self) -> Flow {
        self.interactions.iter().map(|i| i.flow).sum()
    }

    /// Retains only interactions with `time <= cutoff`; used by the
    /// time-prefix scalability samples of §6.2.4 (B1..B5 etc.).
    pub fn retain_time_prefix(&mut self, cutoff: Timestamp) {
        self.interactions.retain(|i| i.time <= cutoff);
    }
}

impl FromIterator<Interaction> for TemporalMultigraph {
    fn from_iter<T: IntoIterator<Item = Interaction>>(iter: T) -> Self {
        let mut g = TemporalMultigraph::new();
        for i in iter {
            g.push(i);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bitcoin-user example of paper Fig. 2 with u1..u4 renumbered 0..3.
    pub(crate) fn paper_fig2() -> TemporalMultigraph {
        [
            (0u32, 1u32, 13i64, 5.0), // u1 -> u2
            (0, 1, 15, 7.0),
            (2, 0, 10, 10.0), // u3 -> u1
            (3, 2, 1, 2.0),   // u4 -> u3
            (3, 2, 3, 5.0),   // u4 -> u3
            (3, 0, 11, 10.0), // u4 -> u1
            (1, 2, 18, 20.0), // u2 -> u3
            (2, 3, 19, 5.0),  // u3 -> u4
            (2, 3, 21, 4.0),  // u3 -> u4
            (1, 3, 23, 7.0),  // u2 -> u4
        ]
        .into_iter()
        .map(|(u, v, t, f)| Interaction::new(u, v, t, f))
        .collect()
    }

    #[test]
    fn counts_match_paper_fig2() {
        let g = paper_fig2();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_interactions(), 10);
    }

    #[test]
    fn node_count_grows_with_pushes() {
        let mut g = TemporalMultigraph::new();
        assert_eq!(g.num_nodes(), 0);
        g.push(Interaction::new(5, 2, 1, 1.0));
        assert_eq!(g.num_nodes(), 6);
        g.push(Interaction::new(0, 9, 2, 1.0));
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn time_span_and_total_flow() {
        let g = paper_fig2();
        assert_eq!(g.time_span(), Some((1, 23)));
        assert!((g.total_flow() - 75.0).abs() < 1e-9);
        assert_eq!(TemporalMultigraph::new().time_span(), None);
    }

    #[test]
    fn retain_time_prefix_drops_late_interactions() {
        let mut g = paper_fig2();
        g.retain_time_prefix(15);
        assert_eq!(g.num_interactions(), 6);
        assert!(g.interactions().iter().all(|i| i.time <= 15));
    }

    #[test]
    fn with_capacity_reserves_without_interactions() {
        let g = TemporalMultigraph::with_capacity(100, 50);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_interactions(), 0);
    }
}
