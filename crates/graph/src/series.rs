//! Interaction time series `R(u, v)`: the time-ordered `(t, f)` elements on
//! one edge of the time-series graph, with O(1) range-flow queries.

use crate::event::{Event, Flow, Timestamp};
use std::ops::Range;
use std::sync::Arc;

/// The interaction time series on an edge of `G_T` (paper Table 1:
/// `R(u, v)`), stored sorted by time together with prefix sums of flow so
/// that the aggregated flow of any contiguous element range is O(1).
///
/// Prefix-sum range flow is the workhorse of both Algorithm 1 (the `ϕ`
/// check at every prefix, line 16) and the DP module (the `flow([tj, ti], κ)`
/// term of Eq. 2).
///
/// # Copy-on-write storage
///
/// The element and prefix-sum vectors live behind [`Arc`]s, so cloning a
/// series is O(1) — two reference-count bumps — and cloning a whole
/// [`crate::TimeSeriesGraph`] is O(pairs) instead of O(interactions).
/// Mutators ([`InteractionSeries::append_in_order`],
/// [`InteractionSeries::merge_sorted`],
/// [`InteractionSeries::evict_before`]) go through [`Arc::make_mut`]: a
/// uniquely-owned series mutates in place at the old cost, while a series
/// shared with a published snapshot is copied once on first touch. This
/// is what makes the streaming engine's snapshot publish O(dirty): only
/// the series actually modified since the previous publish ever get
/// deep-copied.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionSeries {
    events: Arc<Vec<Event>>,
    /// `prefix[i]` = total flow of `events[..i]`; has `len + 1` entries.
    prefix: Arc<Vec<Flow>>,
}

impl Default for InteractionSeries {
    fn default() -> Self {
        Self { events: Arc::new(Vec::new()), prefix: Arc::new(vec![0.0]) }
    }
}

impl InteractionSeries {
    /// Builds a series from events, sorting by time (stable, so equal
    /// timestamps keep insertion order).
    pub fn from_events(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.time);
        Self::from_sorted_events(events)
    }

    /// Builds a series from events already sorted by time.
    ///
    /// # Panics
    /// Panics in debug builds if the events are not sorted.
    pub fn from_sorted_events(events: Vec<Event>) -> Self {
        debug_assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        let mut prefix = Vec::with_capacity(events.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for e in &events {
            acc += e.flow;
            prefix.push(acc);
        }
        Self { events: Arc::new(events), prefix: Arc::new(prefix) }
    }

    /// Number of elements in the series.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the series is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The elements, sorted by time.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The `i`-th element.
    #[inline]
    pub fn event(&self, i: usize) -> Event {
        self.events[i]
    }

    /// Timestamp of the `i`-th element.
    #[inline]
    pub fn time(&self, i: usize) -> Timestamp {
        self.events[i].time
    }

    /// Index of the first element with `time >= t` (== `len` if none).
    #[inline]
    pub fn idx_at_or_after(&self, t: Timestamp) -> usize {
        self.events.partition_point(|e| e.time < t)
    }

    /// Index of the first element with `time > t` (== `len` if none).
    #[inline]
    pub fn idx_after(&self, t: Timestamp) -> usize {
        self.events.partition_point(|e| e.time <= t)
    }

    /// Index range of elements with time in the inclusive window `[a, b]`.
    #[inline]
    pub fn range_closed(&self, a: Timestamp, b: Timestamp) -> Range<usize> {
        self.idx_at_or_after(a)..self.idx_after(b)
    }

    /// Index range of elements with time in the half-open window `(a, b]`.
    /// This is the sub-window shape used by the recursion of Algorithm 1:
    /// elements of edge `e_{i+1}` must be strictly after the chosen prefix
    /// of `e_i` and at or before the window end.
    #[inline]
    pub fn range_open_closed(&self, a: Timestamp, b: Timestamp) -> Range<usize> {
        self.idx_after(a)..self.idx_after(b)
    }

    /// Aggregated flow of the element index range `r` in O(1).
    #[inline]
    pub fn flow_of_range(&self, r: Range<usize>) -> Flow {
        debug_assert!(r.start <= r.end && r.end <= self.len());
        self.prefix[r.end] - self.prefix[r.start]
    }

    /// Total flow of the whole series.
    #[inline]
    pub fn total_flow(&self) -> Flow {
        *self.prefix.last().expect("prefix always has at least one entry")
    }

    /// Aggregated flow of all elements with time in `[a, b]`.
    #[inline]
    pub fn flow_in_closed(&self, a: Timestamp, b: Timestamp) -> Flow {
        self.flow_of_range(self.range_closed(a, b))
    }

    /// Timestamp of the earliest element (`None` when empty). Together
    /// with [`InteractionSeries::last_time`] this is the pair's *active
    /// interval* — maintained for free by the sorted representation.
    #[inline]
    pub fn first_time(&self) -> Option<Timestamp> {
        self.events.first().map(|e| e.time)
    }

    /// Timestamp of the latest element (`None` when empty).
    #[inline]
    pub fn last_time(&self) -> Option<Timestamp> {
        self.events.last().map(|e| e.time)
    }

    /// Whether the series has at least one element inside the closed
    /// window `[a, b]`. Exact, but cheap: the active-interval endpoints
    /// answer most calls in O(1) and only a window strictly inside the
    /// span falls back to one binary search.
    #[inline]
    pub fn active_in(&self, a: Timestamp, b: Timestamp) -> bool {
        let (Some(first), Some(last)) = (self.first_time(), self.last_time()) else {
            return false;
        };
        if last < a || first > b {
            return false;
        }
        // An endpoint inside the window is itself an in-window element.
        if first >= a || last <= b {
            return true;
        }
        self.idx_at_or_after(a) < self.idx_after(b)
    }

    /// Whether this series shares its backing storage with `other`
    /// (copy-on-write clones do until one side is mutated). Exposed for
    /// the structural-sharing assertions of the streaming snapshot tests
    /// and benches.
    #[doc(hidden)]
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.events, &other.events) && Arc::ptr_eq(&self.prefix, &other.prefix)
    }

    /// Appends an element whose time is `>=` the current last time,
    /// maintaining the prefix sums in O(1). This is the fast path for
    /// in-order streaming ingestion.
    ///
    /// # Panics
    /// Panics in debug builds if `e` is older than the last element.
    #[inline]
    pub fn append_in_order(&mut self, e: Event) {
        debug_assert!(
            self.events.last().is_none_or(|l| l.time <= e.time),
            "append_in_order: out-of-order event"
        );
        let total = self.total_flow();
        Arc::make_mut(&mut self.prefix).push(total + e.flow);
        Arc::make_mut(&mut self.events).push(e);
    }

    /// Merges a time-sorted batch of elements into the series in
    /// O(len + batch), rebuilding the prefix sums. Elements tied on time
    /// keep existing-before-incoming order, so an append stream split into
    /// sorted batches reproduces the order of a batch
    /// [`InteractionSeries::from_events`] build of the same arrivals.
    ///
    /// # Panics
    /// Panics in debug builds if `incoming` is not sorted by time.
    pub fn merge_sorted(&mut self, incoming: &[Event]) {
        debug_assert!(incoming.windows(2).all(|w| w[0].time <= w[1].time));
        if incoming.is_empty() {
            return;
        }
        // Fast path: the whole batch appends after the current tail.
        if self.events.last().is_none_or(|l| l.time <= incoming[0].time) {
            Arc::make_mut(&mut self.events).reserve(incoming.len());
            Arc::make_mut(&mut self.prefix).reserve(incoming.len());
            for &e in incoming {
                self.append_in_order(e);
            }
            return;
        }
        let mut merged = Vec::with_capacity(self.events.len() + incoming.len());
        let (mut i, mut j) = (0, 0);
        while i < self.events.len() && j < incoming.len() {
            // `<=` keeps existing elements first on ties (stable).
            if self.events[i].time <= incoming[j].time {
                merged.push(self.events[i]);
                i += 1;
            } else {
                merged.push(incoming[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.events[i..]);
        merged.extend_from_slice(&incoming[j..]);
        *self = Self::from_sorted_events(merged);
    }

    /// Removes every element with `time < t`, rebuilding the prefix sums;
    /// returns how many elements were dropped. This is the sliding-window
    /// eviction hook: amortized O(dropped + survivors) per call.
    pub fn evict_before(&mut self, t: Timestamp) -> usize {
        let k = self.idx_at_or_after(t);
        if k == 0 {
            return 0;
        }
        let events = Arc::make_mut(&mut self.events);
        events.drain(..k);
        let prefix = Arc::make_mut(&mut self.prefix);
        prefix.truncate(1);
        let mut acc = 0.0;
        for e in events.iter() {
            acc += e.flow;
            prefix.push(acc);
        }
        k
    }
}

impl InteractionSeries {
    /// Borrows this series as a [`SeriesRef`] — the storage-independent
    /// view the [`crate::store::GraphStore`] trait hands to the search
    /// layers. All read queries on the view behave exactly like the
    /// methods of the owning series.
    #[inline]
    pub fn as_ref(&self) -> SeriesRef<'_> {
        SeriesRef { events: &self.events, prefix: &self.prefix }
    }
}

/// A borrowed, `Copy` view of one interaction series: the sorted `(t, f)`
/// elements plus their flow prefix sums, wherever they live — an
/// in-memory [`InteractionSeries`], a memory-mapped segment, or an epoch
/// overlay. Carries the full read-side query API of
/// [`InteractionSeries`]; every method is a verbatim re-implementation
/// over the borrowed slices, so both backends answer identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesRef<'a> {
    events: &'a [Event],
    /// `prefix[i]` = total flow of `events[..i]`; has `len + 1` entries.
    prefix: &'a [Flow],
}

impl<'a> SeriesRef<'a> {
    /// Assembles a view from raw parts. `prefix` must hold the flow
    /// prefix sums of `events` (length `events.len() + 1`, starting at
    /// `0.0`) — the segment and overlay backends guarantee this by
    /// construction.
    #[inline]
    pub(crate) fn from_raw(events: &'a [Event], prefix: &'a [Flow]) -> Self {
        debug_assert_eq!(prefix.len(), events.len() + 1);
        Self { events, prefix }
    }

    /// Number of elements in the series.
    #[inline]
    pub fn len(self) -> usize {
        self.events.len()
    }

    /// Whether the series is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.events.is_empty()
    }

    /// The elements, sorted by time. The slice borrows the backing
    /// storage (`'a`), not the view, so it outlives this `SeriesRef`.
    #[inline]
    pub fn events(self) -> &'a [Event] {
        self.events
    }

    /// The `i`-th element.
    #[inline]
    pub fn event(self, i: usize) -> Event {
        self.events[i]
    }

    /// Timestamp of the `i`-th element.
    #[inline]
    pub fn time(self, i: usize) -> Timestamp {
        self.events[i].time
    }

    /// Index of the first element with `time >= t` (== `len` if none).
    #[inline]
    pub fn idx_at_or_after(self, t: Timestamp) -> usize {
        self.events.partition_point(|e| e.time < t)
    }

    /// Index of the first element with `time > t` (== `len` if none).
    #[inline]
    pub fn idx_after(self, t: Timestamp) -> usize {
        self.events.partition_point(|e| e.time <= t)
    }

    /// Index range of elements with time in the inclusive window `[a, b]`.
    #[inline]
    pub fn range_closed(self, a: Timestamp, b: Timestamp) -> Range<usize> {
        self.idx_at_or_after(a)..self.idx_after(b)
    }

    /// Index range of elements with time in the half-open window `(a, b]`.
    #[inline]
    pub fn range_open_closed(self, a: Timestamp, b: Timestamp) -> Range<usize> {
        self.idx_after(a)..self.idx_after(b)
    }

    /// Aggregated flow of the element index range `r` in O(1).
    #[inline]
    pub fn flow_of_range(self, r: Range<usize>) -> Flow {
        debug_assert!(r.start <= r.end && r.end <= self.len());
        self.prefix[r.end] - self.prefix[r.start]
    }

    /// Total flow of the whole series.
    #[inline]
    pub fn total_flow(self) -> Flow {
        *self.prefix.last().expect("prefix always has at least one entry")
    }

    /// Aggregated flow of all elements with time in `[a, b]`.
    #[inline]
    pub fn flow_in_closed(self, a: Timestamp, b: Timestamp) -> Flow {
        self.flow_of_range(self.range_closed(a, b))
    }

    /// Timestamp of the earliest element (`None` when empty).
    #[inline]
    pub fn first_time(self) -> Option<Timestamp> {
        self.events.first().map(|e| e.time)
    }

    /// Timestamp of the latest element (`None` when empty).
    #[inline]
    pub fn last_time(self) -> Option<Timestamp> {
        self.events.last().map(|e| e.time)
    }

    /// Whether the series has at least one element inside the closed
    /// window `[a, b]` (see [`InteractionSeries::active_in`]).
    #[inline]
    pub fn active_in(self, a: Timestamp, b: Timestamp) -> bool {
        let (Some(first), Some(last)) = (self.first_time(), self.last_time()) else {
            return false;
        };
        if last < a || first > b {
            return false;
        }
        if first >= a || last <= b {
            return true;
        }
        self.idx_at_or_after(a) < self.idx_after(b)
    }
}

impl FromIterator<(Timestamp, Flow)> for InteractionSeries {
    fn from_iter<T: IntoIterator<Item = (Timestamp, Flow)>>(iter: T) -> Self {
        Self::from_events(iter.into_iter().map(Event::from).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `R(e1)` of paper Fig. 7: the series on edge (u3, u2).
    fn fig7_e1() -> InteractionSeries {
        [(10, 5.0), (13, 2.0), (15, 3.0), (18, 7.0)].into_iter().collect()
    }

    #[test]
    fn construction_sorts_by_time() {
        let s: InteractionSeries = [(15, 3.0), (10, 5.0), (13, 2.0)].into_iter().collect();
        let times: Vec<_> = s.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![10, 13, 15]);
    }

    #[test]
    fn prefix_sums_give_range_flow() {
        let s = fig7_e1();
        assert_eq!(s.flow_of_range(0..0), 0.0);
        assert_eq!(s.flow_of_range(0..1), 5.0);
        assert_eq!(s.flow_of_range(0..4), 17.0);
        assert_eq!(s.flow_of_range(1..3), 5.0);
        assert_eq!(s.total_flow(), 17.0);
    }

    #[test]
    fn index_queries() {
        let s = fig7_e1();
        assert_eq!(s.idx_at_or_after(10), 0);
        assert_eq!(s.idx_at_or_after(11), 1);
        assert_eq!(s.idx_after(10), 1);
        assert_eq!(s.idx_after(18), 4);
        assert_eq!(s.idx_at_or_after(19), 4);
    }

    #[test]
    fn window_ranges() {
        let s = fig7_e1();
        // [10, 20] contains all four elements.
        assert_eq!(s.range_closed(10, 20), 0..4);
        // (10, 20] drops the element at t=10.
        assert_eq!(s.range_open_closed(10, 20), 1..4);
        // (15, 25] keeps only t=18.
        assert_eq!(s.range_open_closed(15, 25), 3..4);
        // Empty window.
        assert_eq!(s.range_closed(19, 25), 4..4);
    }

    #[test]
    fn flow_in_closed_window() {
        let s = fig7_e1();
        assert_eq!(s.flow_in_closed(10, 20), 17.0);
        assert_eq!(s.flow_in_closed(13, 15), 5.0);
        assert_eq!(s.flow_in_closed(19, 30), 0.0);
    }

    #[test]
    fn duplicate_timestamps_are_tolerated() {
        let s: InteractionSeries = [(5, 1.0), (5, 2.0), (6, 3.0)].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.flow_in_closed(5, 5), 3.0);
        assert_eq!(s.range_open_closed(5, 6), 2..3);
    }

    #[test]
    fn empty_series() {
        let s = InteractionSeries::default();
        assert!(s.is_empty());
        assert_eq!(s.total_flow(), 0.0);
        assert_eq!(s.range_closed(0, 100), 0..0);
    }

    #[test]
    fn append_in_order_maintains_prefix_sums() {
        let mut s = InteractionSeries::default();
        for (t, f) in [(10, 5.0), (13, 2.0), (13, 1.0), (15, 3.0)] {
            s.append_in_order(Event::new(t, f));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.total_flow(), 11.0);
        assert_eq!(s.flow_in_closed(13, 13), 3.0);
        let batch: InteractionSeries =
            [(10, 5.0), (13, 2.0), (13, 1.0), (15, 3.0)].into_iter().collect();
        assert_eq!(s, batch);
    }

    #[test]
    fn merge_sorted_interleaves_and_keeps_tie_order() {
        let mut s = fig7_e1(); // times 10, 13, 15, 18
        s.merge_sorted(&[Event::new(9, 1.0), Event::new(13, 9.0), Event::new(20, 4.0)]);
        let times: Vec<_> = s.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![9, 10, 13, 13, 15, 18, 20]);
        // The existing (13, 2) precedes the merged (13, 9).
        assert_eq!(s.event(2).flow, 2.0);
        assert_eq!(s.event(3).flow, 9.0);
        assert_eq!(s.total_flow(), 17.0 + 14.0);
        // Prefix sums were rebuilt consistently.
        assert_eq!(s.flow_of_range(0..7), s.total_flow());
        // Appending batch entirely after the tail takes the fast path.
        s.merge_sorted(&[Event::new(21, 1.0), Event::new(22, 1.0)]);
        assert_eq!(s.len(), 9);
        assert_eq!(s.total_flow(), 33.0);
        // Merging nothing is a no-op.
        s.merge_sorted(&[]);
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn active_interval_and_window_activity() {
        let s = fig7_e1(); // times 10, 13, 15, 18
        assert_eq!(s.first_time(), Some(10));
        assert_eq!(s.last_time(), Some(18));
        assert!(s.active_in(0, 100));
        assert!(s.active_in(10, 10));
        assert!(s.active_in(18, 30));
        assert!(s.active_in(14, 16), "window strictly inside the span, element at 15");
        assert!(!s.active_in(16, 17), "inside the span but between elements");
        assert!(!s.active_in(0, 9));
        assert!(!s.active_in(19, 30));
        let empty = InteractionSeries::default();
        assert_eq!(empty.first_time(), None);
        assert!(!empty.active_in(i64::MIN, i64::MAX));
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let a = fig7_e1();
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b), "a clone is O(1) and shares storage");
        b.append_in_order(Event::new(30, 1.0));
        assert!(!a.shares_storage_with(&b), "mutation copies on write");
        assert_eq!(a.len(), 4, "the original is untouched");
        assert_eq!(b.len(), 5);
        assert_eq!(a.total_flow(), 17.0);
        assert_eq!(b.total_flow(), 18.0);
        // Eviction and merges also detach shared storage.
        let mut c = a.clone();
        c.evict_before(14);
        assert!(!a.shares_storage_with(&c));
        assert_eq!(a.len(), 4);
        let mut d = a.clone();
        d.merge_sorted(&[Event::new(11, 2.0)]);
        assert!(!a.shares_storage_with(&d));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn series_ref_mirrors_the_owning_series() {
        let s = fig7_e1(); // times 10, 13, 15, 18
        let r = s.as_ref();
        assert_eq!(r.len(), s.len());
        assert_eq!(r.events(), s.events());
        assert_eq!(r.event(2), s.event(2));
        assert_eq!(r.time(3), s.time(3));
        assert_eq!(r.total_flow(), s.total_flow());
        for t in [9, 10, 13, 14, 18, 19] {
            assert_eq!(r.idx_at_or_after(t), s.idx_at_or_after(t), "t={t}");
            assert_eq!(r.idx_after(t), s.idx_after(t), "t={t}");
        }
        for (a, b) in [(10, 20), (13, 15), (16, 17), (0, 9), (19, 30), (14, 16)] {
            assert_eq!(r.range_closed(a, b), s.range_closed(a, b));
            assert_eq!(r.range_open_closed(a, b), s.range_open_closed(a, b));
            assert_eq!(r.flow_in_closed(a, b), s.flow_in_closed(a, b));
            assert_eq!(r.active_in(a, b), s.active_in(a, b), "[{a},{b}]");
        }
        assert_eq!(r.first_time(), s.first_time());
        assert_eq!(r.last_time(), s.last_time());
        assert_eq!(r.flow_of_range(1..3), s.flow_of_range(1..3));
        let empty = InteractionSeries::default();
        let er = empty.as_ref();
        assert!(er.is_empty());
        assert_eq!(er.total_flow(), 0.0);
        assert!(!er.active_in(i64::MIN, i64::MAX));
    }

    #[test]
    fn evict_before_drops_old_elements() {
        let mut s = fig7_e1();
        assert_eq!(s.evict_before(5), 0, "nothing older than 5");
        assert_eq!(s.evict_before(14), 2);
        let times: Vec<_> = s.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![15, 18]);
        assert_eq!(s.total_flow(), 10.0);
        assert_eq!(s.flow_of_range(0..1), 3.0);
        assert_eq!(s.evict_before(100), 2);
        assert!(s.is_empty());
        assert_eq!(s.total_flow(), 0.0);
    }
}
