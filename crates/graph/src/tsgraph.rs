//! The time-series graph `G_T(V, E_T)` (paper §4, Fig. 5): parallel
//! multigraph edges merged into one edge per connected node pair, each
//! carrying an [`InteractionSeries`].
//!
//! Stored in CSR form: pairs are sorted by `(u, v)`, so the out-edges of a
//! node are a contiguous slice and `pair_id(u, v)` is a binary search within
//! that slice.

use crate::active::ActiveOriginIndex;
use crate::event::{Event, NodeId, PairId, Timestamp};
use crate::series::InteractionSeries;
use crate::window::TimeWindow;

/// Sentinel for "no events": an empty interval that any real timestamp
/// expands.
const EMPTY_SPAN: (Timestamp, Timestamp) = (Timestamp::MAX, Timestamp::MIN);

/// The merged, index-based graph all motif algorithms run on.
///
/// Besides the CSR pair/series storage, the graph maintains *activity
/// metadata* incrementally through every mutation path: a per-origin
/// active interval (`[min_time, max_time]` over all out-pair series) and
/// a time-bucketed [`ActiveOriginIndex`], so window-restricted searches
/// can skip origins and pairs with no in-window interaction without
/// touching their series (see [`TimeSeriesGraph::active_origins_in`]).
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesGraph {
    num_nodes: usize,
    num_interactions: usize,
    /// Connected node pairs, sorted by `(u, v)`. Index = `PairId`.
    pairs: Vec<(NodeId, NodeId)>,
    /// `series[p]` is the interaction series of `pairs[p]`.
    series: Vec<InteractionSeries>,
    /// CSR offsets: out-pairs of node `u` are `pairs[out_start[u] as usize ..
    /// out_start[u + 1] as usize]`. Length `num_nodes + 1`.
    out_start: Vec<u32>,
    /// SoA id column: `out_targets[p] = pairs[p].1`. The worst-case-
    /// optimal P1 intersection walks only this column (and the in-side
    /// twins below), never the `(u, v)` tuple array.
    out_targets: Vec<NodeId>,
    /// Transposed CSR offsets: in-pair *positions* of node `v` are
    /// `in_pairs[in_start[v] as usize .. in_start[v + 1] as usize]`.
    /// Length `num_nodes + 1`.
    in_start: Vec<u32>,
    /// Pair ids grouped by target, each group sorted by source (filling
    /// in ascending pair id gives this for free, since pairs are sorted
    /// by `(u, v)`). Length `num_pairs`.
    in_pairs: Vec<PairId>,
    /// SoA id column parallel to `in_pairs`: the source of each in-pair.
    in_sources: Vec<NodeId>,
    /// `origin_span[u]` = active interval of `u`'s out-edges
    /// ([`EMPTY_SPAN`] when none). Length `num_nodes`.
    origin_span: Vec<(Timestamp, Timestamp)>,
    /// Time-bucketed origin activity (see [`ActiveOriginIndex`]).
    index: ActiveOriginIndex,
}

impl TimeSeriesGraph {
    /// Builds the graph from per-pair event lists. `pairs_events` may be in
    /// any order; events within a pair may be unsorted.
    ///
    /// Prefer [`crate::GraphBuilder`], which produces this from raw
    /// interactions.
    pub fn from_pair_events(
        num_nodes: usize,
        mut pairs_events: Vec<((NodeId, NodeId), Vec<crate::Event>)>,
    ) -> Self {
        pairs_events.sort_by_key(|(p, _)| *p);
        let mut pairs = Vec::with_capacity(pairs_events.len());
        let mut series = Vec::with_capacity(pairs_events.len());
        let mut num_interactions = 0;
        for (pair, events) in pairs_events {
            debug_assert!(pairs.last().is_none_or(|&last| last != pair), "duplicate pair {pair:?}");
            num_interactions += events.len();
            pairs.push(pair);
            series.push(InteractionSeries::from_events(events));
        }
        let num_nodes =
            num_nodes.max(pairs.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0));
        let out_start = Self::csr_offsets(num_nodes, &pairs);
        let mut g = Self {
            num_nodes,
            num_interactions,
            pairs,
            series,
            out_start,
            out_targets: Vec::new(),
            in_start: Vec::new(),
            in_pairs: Vec::new(),
            in_sources: Vec::new(),
            origin_span: Vec::new(),
            index: ActiveOriginIndex::new(),
        };
        g.rebuild_adjacency_columns();
        g.rebuild_activity();
        g
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of connected node pairs `|E_T|`.
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of underlying multigraph edges `|E|`.
    #[inline]
    pub fn num_interactions(&self) -> usize {
        self.num_interactions
    }

    /// The `(u, v)` endpoints of pair `p`.
    #[inline]
    pub fn pair(&self, p: PairId) -> (NodeId, NodeId) {
        self.pairs[p as usize]
    }

    /// All connected pairs, sorted by `(u, v)`.
    #[inline]
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// The interaction series on pair `p`.
    #[inline]
    pub fn series(&self, p: PairId) -> &InteractionSeries {
        &self.series[p as usize]
    }

    /// All series, parallel to [`Self::pairs`].
    #[inline]
    pub fn all_series(&self) -> &[InteractionSeries] {
        &self.series
    }

    /// Pair ids of the out-edges of `u`, a contiguous CSR range.
    #[inline]
    pub fn out_pair_range(&self, u: NodeId) -> std::ops::Range<u32> {
        self.out_start[u as usize]..self.out_start[u as usize + 1]
    }

    /// Iterates `(pair_id, target)` over the out-neighbours of `u`,
    /// sorted by target id.
    pub fn out_pairs(&self, u: NodeId) -> impl Iterator<Item = (PairId, NodeId)> + '_ {
        self.out_pair_range(u).map(move |p| (p, self.pairs[p as usize].1))
    }

    /// Out-degree of `u` in `G_T` (number of distinct targets).
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_pair_range(u).len()
    }

    /// Looks up the pair id of edge `(u, v)` by binary search in `u`'s
    /// out-slice.
    pub fn pair_id(&self, u: NodeId, v: NodeId) -> Option<PairId> {
        let r = self.out_pair_range(u);
        let slice = &self.pairs[r.start as usize..r.end as usize];
        slice.binary_search_by_key(&v, |&(_, t)| t).ok().map(|i| r.start + i as u32)
    }

    /// Builds the graph from per-pair *series* (already sorted with prefix
    /// sums), skipping the per-event sort of
    /// [`TimeSeriesGraph::from_pair_events`]. This is the snapshot path of
    /// the streaming engine: series maintained incrementally are moved in
    /// without touching their elements.
    pub fn from_pair_series(
        num_nodes: usize,
        mut pairs_series: Vec<((NodeId, NodeId), InteractionSeries)>,
    ) -> Self {
        pairs_series.sort_by_key(|(p, _)| *p);
        let mut pairs = Vec::with_capacity(pairs_series.len());
        let mut series = Vec::with_capacity(pairs_series.len());
        let mut num_interactions = 0;
        for (pair, s) in pairs_series {
            debug_assert!(pairs.last().is_none_or(|&last| last != pair), "duplicate pair {pair:?}");
            num_interactions += s.len();
            pairs.push(pair);
            series.push(s);
        }
        let num_nodes =
            num_nodes.max(pairs.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0));
        let out_start = Self::csr_offsets(num_nodes, &pairs);
        let mut g = Self {
            num_nodes,
            num_interactions,
            pairs,
            series,
            out_start,
            out_targets: Vec::new(),
            in_start: Vec::new(),
            in_pairs: Vec::new(),
            in_sources: Vec::new(),
            origin_span: Vec::new(),
            index: ActiveOriginIndex::new(),
        };
        g.rebuild_adjacency_columns();
        g.rebuild_activity();
        g
    }

    /// Recomputes the per-origin spans and the origin index from the
    /// series — the bulk-construction path (O(interactions)).
    fn rebuild_activity(&mut self) {
        self.origin_span = vec![EMPTY_SPAN; self.num_nodes];
        self.recompute_origin_spans();
        let mut index = ActiveOriginIndex::new();
        if let Some((lo, hi)) = self.time_span() {
            index.preset_span(lo, hi);
        }
        for (p, s) in self.series.iter().enumerate() {
            if !s.is_empty() {
                record_series(&mut index, self.pairs[p].0, s.events());
            }
        }
        self.index = index;
    }

    #[inline]
    fn expand_origin_span(&mut self, u: NodeId, lo: Timestamp, hi: Timestamp) {
        let span = &mut self.origin_span[u as usize];
        span.0 = span.0.min(lo);
        span.1 = span.1.max(hi);
    }

    /// Re-derives every origin span from the series (after eviction
    /// shrank them); O(pairs).
    fn recompute_origin_spans(&mut self) {
        self.origin_span.iter_mut().for_each(|s| *s = EMPTY_SPAN);
        for (p, s) in self.series.iter().enumerate() {
            if let (Some(first), Some(last)) = (s.first_time(), s.last_time()) {
                let span = &mut self.origin_span[self.pairs[p].0 as usize];
                span.0 = span.0.min(first);
                span.1 = span.1.max(last);
            }
        }
    }

    /// The active interval `[min_time, max_time]` of `u`'s out-edge
    /// interactions, or `None` if `u` currently has none. Kept exact
    /// through appends, merges and evictions.
    pub fn origin_active_span(&self, u: NodeId) -> Option<(Timestamp, Timestamp)> {
        let &(lo, hi) = self.origin_span.get(u as usize)?;
        (lo <= hi).then_some((lo, hi))
    }

    /// Whether origin `u` *may* have an out-edge interaction inside `w`:
    /// true iff `u`'s active interval overlaps `w`. Conservative (the
    /// interval may contain gaps); pair-level checks stay exact via
    /// [`InteractionSeries::active_in`].
    #[inline]
    pub fn origin_active_in(&self, u: NodeId, w: TimeWindow) -> bool {
        self.origin_span
            .get(u as usize)
            .is_some_and(|&(lo, hi)| lo <= hi && lo <= w.end && hi >= w.start)
    }

    /// Sorted, deduplicated origins that may have an out-edge interaction
    /// inside the closed window `w`: the time-bucketed index narrows the
    /// candidates and the exact per-origin spans filter out evicted or
    /// out-of-interval origins. A superset of the origins with an actual
    /// in-window event, and always a subset of the origins with any
    /// events at all — the window-bounded phase-P1 driver iterates this
    /// instead of every node.
    pub fn active_origins_in(&self, w: TimeWindow) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.active_origins_in_range(w, 0..NodeId::MAX, &mut out);
        out
    }

    /// [`TimeSeriesGraph::active_origins_in`] restricted to origins in
    /// `range`, written into the caller-provided buffer (cleared first) so
    /// steady-state queries allocate nothing. Parallel bounded searches
    /// call this once per origin shard: every worker pulls only its own
    /// slice of each index bucket instead of materialising (and then
    /// filtering) one global candidate list per task.
    pub fn active_origins_in_range(
        &self,
        w: TimeWindow,
        range: std::ops::Range<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        self.index.origins_overlapping_in_range(w.start, w.end, range.start, range.end, out);
        out.retain(|&u| self.origin_active_in(u, w));
    }

    /// Number of buckets the origin index currently holds (observability:
    /// eviction must shrink this as whole buckets fall below the floor).
    pub fn active_index_buckets(&self) -> usize {
        self.index.num_buckets()
    }

    fn csr_offsets(num_nodes: usize, pairs: &[(NodeId, NodeId)]) -> Vec<u32> {
        let mut out_start = vec![0u32; num_nodes + 1];
        for &(u, _) in pairs {
            out_start[u as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            out_start[i + 1] += out_start[i];
        }
        out_start
    }

    /// Rebuilds the SoA id columns and the transposed (in-edge) CSR from
    /// `pairs`; O(nodes + pairs). Runs at every point that recomputes
    /// `out_start` — topology-stable mutations (appends, merges,
    /// evictions that keep empty pairs) never touch it.
    fn rebuild_adjacency_columns(&mut self) {
        self.out_targets.clear();
        self.out_targets.extend(self.pairs.iter().map(|&(_, v)| v));
        self.in_start = vec![0u32; self.num_nodes + 1];
        for &(_, v) in &self.pairs {
            self.in_start[v as usize + 1] += 1;
        }
        for i in 0..self.num_nodes {
            self.in_start[i + 1] += self.in_start[i];
        }
        // Filling slots in ascending pair id keeps each in-list sorted by
        // source: for a fixed target, pair ids ascend with the source.
        let mut cursor = self.in_start.clone();
        self.in_pairs = vec![0; self.pairs.len()];
        self.in_sources = vec![0; self.pairs.len()];
        for (p, &(u, v)) in self.pairs.iter().enumerate() {
            let slot = cursor[v as usize] as usize;
            cursor[v as usize] += 1;
            self.in_pairs[slot] = p as PairId;
            self.in_sources[slot] = u;
        }
    }

    /// Target node at position `i` of `u`'s out-list (the SoA id column
    /// twin of [`TimeSeriesGraph::out_pairs`]).
    #[inline]
    pub fn out_target_at(&self, u: NodeId, i: u32) -> NodeId {
        self.out_targets[(self.out_start[u as usize] + i) as usize]
    }

    /// In-degree of `v` in `G_T` (number of distinct sources).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> u32 {
        self.in_start[v as usize + 1] - self.in_start[v as usize]
    }

    /// The pair at position `i` (`0 <= i < in_degree(v)`) of `v`'s
    /// in-list, which is sorted by source id.
    #[inline]
    pub fn in_pair_at(&self, v: NodeId, i: u32) -> PairId {
        self.in_pairs[(self.in_start[v as usize] + i) as usize]
    }

    /// Source node at position `i` of `v`'s in-list.
    #[inline]
    pub fn in_source_at(&self, v: NodeId, i: u32) -> NodeId {
        self.in_sources[(self.in_start[v as usize] + i) as usize]
    }

    /// Appends an in-order event to the series of pair `p` in O(1)
    /// (see [`InteractionSeries::append_in_order`]), keeping
    /// [`TimeSeriesGraph::num_interactions`] and the activity metadata
    /// consistent.
    #[inline]
    pub fn append_in_order(&mut self, p: PairId, e: Event) {
        self.series[p as usize].append_in_order(e);
        self.num_interactions += 1;
        let u = self.pairs[p as usize].0;
        self.expand_origin_span(u, e.time, e.time);
        self.index.record(u, e.time);
    }

    /// Merges a time-sorted event batch into the series of pair `p` (see
    /// [`InteractionSeries::merge_sorted`]), keeping the interaction count
    /// and the activity metadata consistent.
    pub fn merge_events(&mut self, p: PairId, sorted: &[Event]) {
        self.series[p as usize].merge_sorted(sorted);
        self.num_interactions += sorted.len();
        if let (Some(first), Some(last)) = (sorted.first(), sorted.last()) {
            let u = self.pairs[p as usize].0;
            self.expand_origin_span(u, first.time, last.time);
            record_series(&mut self.index, u, sorted);
        }
    }

    /// Removes every interaction with `time < t` from all series; returns
    /// the number removed. Pairs whose series become empty stay in the
    /// graph (so `PairId`s remain stable) until
    /// [`TimeSeriesGraph::retain_nonempty`] is called; the search layers
    /// treat empty series as contributing no matches.
    pub fn evict_before(&mut self, t: Timestamp) -> usize {
        self.evict_before_with(t, |_, _| ())
    }

    /// [`TimeSeriesGraph::evict_before`], reporting `(pair, removed)` for
    /// every pair that lost at least one interaction — the hook the
    /// streaming layer uses to keep its dirty-pair accounting exact.
    /// Active-interval metadata shrinks with the eviction: origin spans
    /// are recomputed from the surviving series and index buckets wholly
    /// below the floor are dropped.
    pub fn evict_before_with(
        &mut self,
        t: Timestamp,
        mut on_evicted: impl FnMut((NodeId, NodeId), usize),
    ) -> usize {
        let mut removed = 0;
        for (p, s) in self.series.iter_mut().enumerate() {
            let dropped = s.evict_before(t);
            if dropped > 0 {
                on_evicted(self.pairs[p], dropped);
                removed += dropped;
            }
        }
        self.num_interactions -= removed;
        if removed > 0 {
            self.recompute_origin_spans();
            self.index.evict_below(t);
        }
        removed
    }

    /// Inserts new connected pairs (with their series) into the graph,
    /// rebuilding the CSR index in O(existing + new·log new). Existing
    /// `PairId`s are invalidated. The pairs must not already be present.
    pub fn insert_series(&mut self, mut new: Vec<((NodeId, NodeId), InteractionSeries)>) {
        if new.is_empty() {
            return;
        }
        new.sort_by_key(|(p, _)| *p);
        // Fold the incoming activity in first (incremental — the resident
        // metadata is already correct, so no O(interactions) rebuild).
        let grown = self
            .num_nodes
            .max(new.iter().map(|&((u, v), _)| u.max(v) as usize + 1).max().unwrap_or(0));
        self.origin_span.resize(grown, EMPTY_SPAN);
        for ((u, _), s) in &new {
            if let (Some(first), Some(last)) = (s.first_time(), s.last_time()) {
                let span = &mut self.origin_span[*u as usize];
                span.0 = span.0.min(first);
                span.1 = span.1.max(last);
                record_series(&mut self.index, *u, s.events());
            }
        }
        let mut pairs = Vec::with_capacity(self.pairs.len() + new.len());
        let mut series = Vec::with_capacity(self.pairs.len() + new.len());
        let mut old = self.pairs.drain(..).zip(self.series.drain(..)).peekable();
        let mut incoming = new.into_iter().peekable();
        loop {
            match (old.peek(), incoming.peek()) {
                (Some(&(op, _)), Some(&(np, _))) => {
                    debug_assert!(op != np, "insert_series: pair {np:?} already present");
                    if op < np {
                        let (p, s) = old.next().unwrap();
                        pairs.push(p);
                        series.push(s);
                    } else {
                        let ((u, v), s) = incoming.next().unwrap();
                        self.num_interactions += s.len();
                        pairs.push((u, v));
                        series.push(s);
                    }
                }
                (Some(_), None) => {
                    let (p, s) = old.next().unwrap();
                    pairs.push(p);
                    series.push(s);
                }
                (None, Some(_)) => {
                    let ((u, v), s) = incoming.next().unwrap();
                    self.num_interactions += s.len();
                    pairs.push((u, v));
                    series.push(s);
                }
                (None, None) => break,
            }
        }
        drop(old);
        drop(incoming);
        self.num_nodes = self
            .num_nodes
            .max(pairs.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0));
        self.out_start = Self::csr_offsets(self.num_nodes, &pairs);
        self.pairs = pairs;
        self.series = series;
        self.rebuild_adjacency_columns();
    }

    /// Drops pairs whose series are empty (left behind by
    /// [`TimeSeriesGraph::evict_before`]) and rebuilds the CSR index.
    /// Existing `PairId`s are invalidated. Returns the number of pairs
    /// removed.
    pub fn retain_nonempty(&mut self) -> usize {
        let before = self.pairs.len();
        let mut kept_pairs = Vec::with_capacity(before);
        let mut kept_series = Vec::with_capacity(before);
        for (p, s) in self.pairs.drain(..).zip(self.series.drain(..)) {
            if !s.is_empty() {
                kept_pairs.push(p);
                kept_series.push(s);
            }
        }
        self.pairs = kept_pairs;
        self.series = kept_series;
        self.out_start = Self::csr_offsets(self.num_nodes, &self.pairs);
        self.rebuild_adjacency_columns();
        before - self.pairs.len()
    }

    /// Earliest and latest timestamp over all series, or `None` if the
    /// graph has no interactions.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let mut lo = None;
        let mut hi = None;
        for s in &self.series {
            if let (Some(f), Some(l)) = (s.events().first(), s.events().last()) {
                lo = Some(lo.map_or(f.time, |x: Timestamp| x.min(f.time)));
                hi = Some(hi.map_or(l.time, |x: Timestamp| x.max(l.time)));
            }
        }
        Some((lo?, hi?))
    }
}

/// Records every event of a sorted series into the index via a
/// [`crate::active::SeriesRecorder`] (width-aware same-bucket skipping,
/// ~O(buckets touched) per dense series).
fn record_series(index: &mut ActiveOriginIndex, u: NodeId, sorted: &[Event]) {
    let mut rec = crate::active::SeriesRecorder::new();
    for e in sorted {
        rec.note(index, u, e.time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Paper Fig. 5(b): the time-series graph of the Fig. 2 multigraph.
    fn fig5() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        for (u, v, t, f) in [
            (0u32, 1u32, 13i64, 5.0),
            (0, 1, 15, 7.0),
            (2, 0, 10, 10.0),
            (3, 2, 1, 2.0),
            (3, 2, 3, 5.0),
            (3, 0, 11, 10.0),
            (1, 2, 18, 20.0),
            (2, 3, 19, 5.0),
            (2, 3, 21, 4.0),
            (1, 3, 23, 7.0),
        ] {
            b.add_interaction(u, v, t, f);
        }
        b.build_time_series_graph()
    }

    #[test]
    fn merging_matches_paper_fig5() {
        let g = fig5();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_pairs(), 7); // 7 connected node pairs
        assert_eq!(g.num_interactions(), 10);

        // (u1, u2) carries the two-element series (13,5), (15,7).
        let p = g.pair_id(0, 1).unwrap();
        let s = g.series(p);
        assert_eq!(s.len(), 2);
        assert_eq!(s.time(0), 13);
        assert_eq!(s.time(1), 15);
        assert_eq!(s.total_flow(), 12.0);
    }

    #[test]
    fn pair_lookup() {
        let g = fig5();
        assert!(g.pair_id(0, 1).is_some());
        assert!(g.pair_id(1, 0).is_none()); // direction matters
        assert!(g.pair_id(0, 3).is_none());
        for p in 0..g.num_pairs() as u32 {
            let (u, v) = g.pair(p);
            assert_eq!(g.pair_id(u, v), Some(p));
        }
    }

    #[test]
    fn out_neighbours_are_sorted_and_complete() {
        let g = fig5();
        let n3: Vec<_> = g.out_pairs(3).map(|(_, v)| v).collect();
        assert_eq!(n3, vec![0, 2]); // u4 -> u1, u4 -> u3
        assert_eq!(g.out_degree(1), 2); // u2 -> u3, u2 -> u4
        let total: usize = (0..4).map(|u| g.out_degree(u)).sum();
        assert_eq!(total, g.num_pairs());
    }

    #[test]
    fn time_span_covers_all_series() {
        let g = fig5();
        assert_eq!(g.time_span(), Some((1, 23)));
        assert_eq!(TimeSeriesGraph::default().time_span(), None);
    }

    #[test]
    fn isolated_trailing_nodes_are_kept() {
        let g =
            TimeSeriesGraph::from_pair_events(10, vec![((0, 1), vec![crate::Event::new(1, 1.0)])]);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn from_pair_series_matches_from_pair_events() {
        let events = vec![
            ((0u32, 1u32), vec![Event::new(13, 5.0), Event::new(15, 7.0)]),
            ((2, 0), vec![Event::new(10, 10.0)]),
        ];
        let by_events = TimeSeriesGraph::from_pair_events(0, events.clone());
        let by_series: Vec<_> =
            events.into_iter().map(|(p, ev)| (p, InteractionSeries::from_events(ev))).collect();
        let g = TimeSeriesGraph::from_pair_series(0, by_series);
        assert_eq!(g.num_nodes(), by_events.num_nodes());
        assert_eq!(g.num_interactions(), by_events.num_interactions());
        assert_eq!(g.pairs(), by_events.pairs());
        assert_eq!(g.all_series(), by_events.all_series());
    }

    #[test]
    fn in_place_mutation_keeps_counts_consistent() {
        let mut g = fig5();
        let p = g.pair_id(0, 1).unwrap();
        g.append_in_order(p, Event::new(20, 1.0));
        assert_eq!(g.num_interactions(), 11);
        assert_eq!(g.series(p).len(), 3);
        g.merge_events(p, &[Event::new(12, 2.0), Event::new(14, 2.0)]);
        assert_eq!(g.num_interactions(), 13);
        let times: Vec<_> = g.series(p).events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![12, 13, 14, 15, 20]);
    }

    #[test]
    fn evict_and_retain_nonempty() {
        let mut g = fig5();
        // Drop everything before t=13: removes times 10, 1, 3 and 11.
        let removed = g.evict_before(13);
        assert_eq!(removed, 4);
        assert_eq!(g.num_interactions(), 6);
        // Pair ids are stable; emptied pairs remain with empty series.
        assert_eq!(g.num_pairs(), 7);
        let p32 = g.pair_id(3, 2).unwrap();
        assert!(g.series(p32).is_empty());
        let dropped = g.retain_nonempty();
        assert_eq!(dropped, 3); // (2,0), (3,2), (3,0) all lived before t=13
        assert_eq!(g.num_pairs(), 4);
        assert_eq!(g.num_interactions(), 6);
        // CSR lookups still work after the rebuild.
        for p in 0..g.num_pairs() as u32 {
            let (u, v) = g.pair(p);
            assert_eq!(g.pair_id(u, v), Some(p));
        }
        assert_eq!(g.time_span(), Some((13, 23)));
    }

    #[test]
    fn origin_spans_track_all_mutation_paths() {
        let mut g = fig5();
        // Construction: node 3's out-edges (3,2) and (3,0) span [1, 11].
        assert_eq!(g.origin_active_span(3), Some((1, 11)));
        assert_eq!(g.origin_active_span(0), Some((13, 15)));
        assert!(g.origin_active_in(3, TimeWindow::new(0, 5)));
        assert!(!g.origin_active_in(3, TimeWindow::new(12, 100)));
        // In-order append extends the span.
        let p = g.pair_id(3, 0).unwrap();
        g.append_in_order(p, Event::new(40, 1.0));
        assert_eq!(g.origin_active_span(3), Some((1, 40)));
        // Merge extends on both ends.
        g.merge_events(p, &[Event::new(0, 1.0), Event::new(50, 1.0)]);
        assert_eq!(g.origin_active_span(3), Some((0, 50)));
        // Eviction shrinks spans back to the surviving events.
        g.evict_before(13);
        assert_eq!(g.origin_active_span(3), Some((40, 50)));
        assert_eq!(g.origin_active_span(2), Some((19, 21)), "(2,3) survives");
        // A fully-evicted origin reports no span and is never returned.
        g.evict_before(100);
        for u in 0..4 {
            assert_eq!(g.origin_active_span(u), None);
        }
        assert!(g.active_origins_in(TimeWindow::new(i64::MIN, i64::MAX)).is_empty());
    }

    #[test]
    fn active_origins_cover_exactly_the_windowed_activity() {
        let g = fig5();
        // Origins with an out-event in [10, 15]: 2 (t=10), 3 (t=11),
        // 0 (t=13, 15).
        assert_eq!(g.active_origins_in(TimeWindow::new(10, 15)), vec![0, 2, 3]);
        // The returned set is always a superset of the truth and a subset
        // of the span-overlapping origins; verify against brute force.
        for (a, b) in [(0, 5), (10, 15), (16, 25), (22, 23), (24, 40)] {
            let w = TimeWindow::new(a, b);
            let got = g.active_origins_in(w);
            for u in 0..g.num_nodes() as NodeId {
                let truly_active =
                    g.out_pairs(u).any(|(p, _)| g.series(p).active_in(w.start, w.end));
                if truly_active {
                    assert!(got.contains(&u), "window [{a},{b}] must include origin {u}");
                }
                if got.contains(&u) {
                    assert!(g.origin_active_in(u, w), "window [{a},{b}] origin {u} has no span");
                }
            }
        }
    }

    #[test]
    fn sharded_active_origin_lookup_partitions_the_window_answer() {
        let g = fig5();
        for (a, b) in [(0, 5), (10, 15), (16, 25), (1, 23), (24, 40)] {
            let w = TimeWindow::new(a, b);
            let full = g.active_origins_in(w);
            let mut stitched = Vec::new();
            let mut shard = Vec::new();
            for lo in 0..g.num_nodes() as NodeId {
                g.active_origins_in_range(w, lo..lo + 1, &mut shard);
                assert!(shard.len() <= 1);
                stitched.extend_from_slice(&shard);
            }
            assert_eq!(stitched, full, "window [{a},{b}]");
        }
    }

    #[test]
    fn mid_batch_coarsening_never_drops_index_entries() {
        // Regression: a merge batch large enough to coarsen the index
        // mid-registration used to skip a later event whose new-width
        // bucket id collided with the stale pre-coarsen id, making the
        // indexed bounded query miss a real match. Build at width 8
        // (span [0, 2040]), then merge a batch that pushes past the
        // bucket cap (coarsen to width 16 fires mid-batch) and ends on a
        // colliding bucket id.
        let mut b = GraphBuilder::new();
        for t in (0..=2040i64).step_by(4) {
            b.add_interaction(0, 1, t, 1.0); // buckets 0..=255 at width 8
        }
        b.add_interaction(2, 3, 0, 1.0);
        let mut g = b.build_time_series_graph();
        let p = g.pair_id(2, 3).unwrap();
        // New buckets 256..=512: the 513th distinct bucket (t=4096)
        // crosses the cap and coarsens to width 16 mid-batch; the final
        // event's new-width bucket (8200/16 = 512) collides with the
        // stale old-width id of t=4096 (4096/8 = 512).
        let mut batch: Vec<Event> = (256..=512i64).map(|i| Event::new(i * 8, 1.0)).collect();
        batch.push(Event::new(8200, 1.0));
        g.merge_events(p, &batch);
        // Every merged event must be discoverable through the index.
        for t in [2048, 4096, 8200] {
            assert_eq!(
                g.active_origins_in(TimeWindow::new(t, t)),
                vec![2],
                "origin 2 must be indexed at t={t}"
            );
        }
    }

    #[test]
    fn eviction_shrinks_the_origin_index() {
        let mut b = GraphBuilder::new();
        for t in 0..2000i64 {
            b.add_interaction((t % 50) as NodeId, 50, t, 1.0);
        }
        let mut g = b.build_time_series_graph();
        let before = g.active_index_buckets();
        assert!(before > 1);
        g.evict_before(1500);
        assert!(g.active_index_buckets() < before, "whole buckets below the floor must drop");
        // Surviving activity is still found; evicted-only windows are not.
        assert_eq!(g.active_origins_in(TimeWindow::new(1500, 1999)).len(), 50);
    }

    #[test]
    fn insert_series_merges_new_pairs() {
        let mut g = fig5();
        let s = InteractionSeries::from_events(vec![Event::new(30, 2.0), Event::new(31, 3.0)]);
        g.insert_series(vec![((1, 0), s), ((5, 2), InteractionSeries::default())]);
        assert_eq!(g.num_pairs(), 9);
        assert_eq!(g.num_interactions(), 12);
        assert_eq!(g.num_nodes(), 6);
        let p = g.pair_id(1, 0).unwrap();
        assert_eq!(g.series(p).total_flow(), 5.0);
        assert!(g.pair_id(5, 2).is_some());
        for p in 0..g.num_pairs() as u32 {
            let (u, v) = g.pair(p);
            assert_eq!(g.pair_id(u, v), Some(p));
        }
        // Inserting nothing is a no-op.
        g.insert_series(Vec::new());
        assert_eq!(g.num_pairs(), 9);
    }

    /// Brute-force transpose check: every pair sits in its target's
    /// in-list, sorted by source, with SoA columns matching the tuples.
    fn check_in_adjacency(g: &TimeSeriesGraph) {
        let mut seen = 0usize;
        for v in 0..g.num_nodes() as NodeId {
            let mut prev = None;
            for i in 0..g.in_degree(v) {
                let p = g.in_pair_at(v, i);
                let (src, tgt) = g.pair(p);
                assert_eq!(tgt, v);
                assert_eq!(g.in_source_at(v, i), src);
                assert!(prev < Some(src), "in-list of {v} must ascend by source");
                prev = Some(src);
                seen += 1;
            }
        }
        assert_eq!(seen, g.num_pairs());
        for u in 0..g.num_nodes() as NodeId {
            for i in 0..g.out_degree(u) as u32 {
                assert_eq!(g.out_target_at(u, i), g.pair(g.out_pair_range(u).start + i).1);
            }
        }
    }

    #[test]
    fn in_adjacency_is_the_exact_transpose_through_every_rebuild() {
        let mut g = fig5();
        check_in_adjacency(&g);
        // insert_series rebuilds the CSR (and the transpose with it).
        let s = InteractionSeries::from_events(vec![Event::new(30, 2.0)]);
        g.insert_series(vec![((1, 0), s), ((5, 2), InteractionSeries::default())]);
        check_in_adjacency(&g);
        // Eviction + retain_nonempty compacts pair ids; the transpose
        // must follow.
        g.evict_before(13);
        g.retain_nonempty();
        check_in_adjacency(&g);
        // from_pair_series path.
        let g2 = TimeSeriesGraph::from_pair_series(
            0,
            vec![
                ((2u32, 0u32), InteractionSeries::from_events(vec![Event::new(1, 1.0)])),
                ((1, 0), InteractionSeries::from_events(vec![Event::new(2, 1.0)])),
                ((0, 2), InteractionSeries::from_events(vec![Event::new(3, 1.0)])),
            ],
        );
        check_in_adjacency(&g2);
        assert_eq!(g2.in_degree(0), 2);
        assert_eq!(g2.in_source_at(0, 0), 1);
        assert_eq!(g2.in_source_at(0, 1), 2);
    }
}
