//! Dataset statistics — the columns of paper Table 3.

use crate::event::Flow;
use crate::tsgraph::TimeSeriesGraph;

/// Summary statistics of an interaction network, mirroring paper Table 3
/// ("#nodes, #connected node pairs, #edges, Avg. flow per edge") plus a few
/// extra shape indicators used in the dataset generators' self-checks.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V|` — number of vertices.
    pub num_nodes: usize,
    /// `|E_T|` — distinct connected node pairs (Table 3 column 3).
    pub num_connected_pairs: usize,
    /// `|E|` — multigraph edges / interactions (Table 3 column 4).
    pub num_interactions: usize,
    /// Mean flow value over all interactions (Table 3 column 5).
    pub avg_flow_per_edge: Flow,
    /// Mean parallel-edge multiplicity: `|E| / |E_T|` (the paper notes ~4
    /// for Facebook, ~3 for Passenger, ~1.4 for Bitcoin).
    pub avg_edges_per_pair: f64,
    /// Earliest timestamp, if any interactions exist.
    pub time_min: Option<i64>,
    /// Latest timestamp, if any interactions exist.
    pub time_max: Option<i64>,
    /// Maximum out-degree in `G_T`.
    pub max_out_degree: usize,
}

impl GraphStats {
    /// Computes statistics from a time-series graph.
    pub fn of(g: &TimeSeriesGraph) -> Self {
        let num_interactions = g.num_interactions();
        let total_flow: Flow = g.all_series().iter().map(|s| s.total_flow()).sum();
        let span = g.time_span();
        let max_out_degree = (0..g.num_nodes() as u32).map(|u| g.out_degree(u)).max().unwrap_or(0);
        Self {
            num_nodes: g.num_nodes(),
            num_connected_pairs: g.num_pairs(),
            num_interactions,
            avg_flow_per_edge: if num_interactions == 0 {
                0.0
            } else {
                total_flow / num_interactions as Flow
            },
            avg_edges_per_pair: if g.num_pairs() == 0 {
                0.0
            } else {
                num_interactions as f64 / g.num_pairs() as f64
            },
            time_min: span.map(|(a, _)| a),
            time_max: span.map(|(_, b)| b),
            max_out_degree,
        }
    }
}

flowmotif_util::impl_to_json!(GraphStats {
    num_nodes,
    num_connected_pairs,
    num_interactions,
    avg_flow_per_edge,
    avg_edges_per_pair,
    time_min,
    time_max,
    max_out_degree,
});

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} pairs={} edges={} avg_flow={:.3} avg_multiplicity={:.2}",
            self.num_nodes,
            self.num_connected_pairs,
            self.num_interactions,
            self.avg_flow_per_edge,
            self.avg_edges_per_pair
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 1i64, 2.0),
            (0, 1, 2, 4.0),
            (1, 2, 3, 6.0),
            (2, 0, 4, 8.0),
        ]);
        let s = GraphStats::of(&b.build_time_series_graph());
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_connected_pairs, 3);
        assert_eq!(s.num_interactions, 4);
        assert!((s.avg_flow_per_edge - 5.0).abs() < 1e-9);
        assert!((s.avg_edges_per_pair - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!((s.time_min, s.time_max), (Some(1), Some(4)));
        assert_eq!(s.max_out_degree, 1);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&GraphBuilder::new().build_time_series_graph());
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.avg_flow_per_edge, 0.0);
        assert_eq!(s.time_min, None);
    }

    #[test]
    fn display_contains_key_numbers() {
        let mut b = GraphBuilder::new();
        b.add_interaction(0, 1, 1, 3.0);
        let s = GraphStats::of(&b.build_time_series_graph()).to_string();
        assert!(s.contains("nodes=2"));
        assert!(s.contains("edges=1"));
    }
}
