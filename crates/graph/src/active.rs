//! Time-bucketed origin-activity index: answers "which origins have any
//! out-edge interaction inside window `W`?" without touching the series
//! of inactive node pairs.
//!
//! The timeline is split into fixed-width buckets; every bucket holds the
//! sorted, deduplicated set of origins with at least one out-edge event
//! in that bucket. A window query unions the buckets it overlaps, so its
//! cost scales with the *activity* inside the window, not with the total
//! pair count. The width adapts automatically: whenever the bucket count
//! exceeds a cap the index coarsens (doubles the width and merges
//! neighbouring buckets), so memory stays bounded for arbitrarily long
//! streams while short test timelines keep single-timestamp resolution.
//!
//! Bucket membership is only ever *added* by appends and merges; eviction
//! drops whole buckets below the floor but may leave an origin listed in
//! a bucket straddling the floor after its events there were evicted.
//! Such entries are conservative (the index answers a *superset* of the
//! truly active origins) and [`crate::TimeSeriesGraph::active_origins_in`]
//! filters them through the exact per-origin active spans, which *are*
//! recomputed on eviction — so no evicted-empty origin is ever
//! resurrected.
//!
//! Bucket vectors are `Arc`-shared: cloning the index (for a published
//! snapshot) copies `O(buckets)` pointers, and a mutation after a clone
//! copies only the touched bucket (copy-on-write via [`Arc::make_mut`]).

use crate::event::{NodeId, Timestamp};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Soft cap on the number of buckets; exceeding it doubles the width.
const MAX_BUCKETS: usize = 512;

/// The time-bucketed origin index (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveOriginIndex {
    /// Bucket width in time units; bucket `b` covers `[b*width, (b+1)*width)`.
    width: i64,
    /// Sorted, deduplicated origins per non-empty bucket.
    buckets: BTreeMap<i64, Arc<Vec<NodeId>>>,
}

impl Default for ActiveOriginIndex {
    fn default() -> Self {
        Self { width: 1, buckets: BTreeMap::new() }
    }
}

impl ActiveOriginIndex {
    /// An empty index with single-timestamp buckets (the width grows on
    /// demand as entries accumulate).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the bucket width for a known time span, so bulk builds
    /// insert directly at the final resolution instead of coarsening
    /// repeatedly. Only meaningful on an empty index.
    pub fn preset_span(&mut self, lo: Timestamp, hi: Timestamp) {
        debug_assert!(self.buckets.is_empty(), "preset_span on a non-empty index");
        let span = hi.saturating_sub(lo).max(0);
        let target = (span / (MAX_BUCKETS as i64 / 2) + 1) as u64;
        self.width = target.next_power_of_two().min(1 << 62) as i64;
    }

    #[inline]
    fn bucket_of(&self, t: Timestamp) -> i64 {
        t.div_euclid(self.width)
    }

    /// Records an out-edge event of `origin` at time `t`. Amortized
    /// `O(log buckets + log bucket_len)` (plus the occasional coarsen).
    pub fn record(&mut self, origin: NodeId, t: Timestamp) {
        let b = self.bucket_of(t);
        let v = Arc::make_mut(self.buckets.entry(b).or_default());
        if let Err(i) = v.binary_search(&origin) {
            v.insert(i, origin);
        }
        if self.buckets.len() > MAX_BUCKETS {
            self.coarsen();
        }
    }

    /// Doubles the bucket width, merging neighbouring buckets, until the
    /// bucket count is back under the cap.
    fn coarsen(&mut self) {
        while self.buckets.len() > MAX_BUCKETS && self.width < i64::MAX / 4 {
            self.width *= 2;
            let mut merged: BTreeMap<i64, Arc<Vec<NodeId>>> = BTreeMap::new();
            for (b, origins) in std::mem::take(&mut self.buckets) {
                // Flooring division composes: t.div_euclid(2w) ==
                // t.div_euclid(w).div_euclid(2).
                let nb = b.div_euclid(2);
                match merged.entry(nb) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(origins);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let a = e.get().as_slice();
                        let b = origins.as_slice();
                        let mut out = Vec::with_capacity(a.len() + b.len());
                        let (mut i, mut j) = (0, 0);
                        while i < a.len() && j < b.len() {
                            match a[i].cmp(&b[j]) {
                                std::cmp::Ordering::Less => {
                                    out.push(a[i]);
                                    i += 1;
                                }
                                std::cmp::Ordering::Greater => {
                                    out.push(b[j]);
                                    j += 1;
                                }
                                std::cmp::Ordering::Equal => {
                                    out.push(a[i]);
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                        out.extend_from_slice(&a[i..]);
                        out.extend_from_slice(&b[j..]);
                        e.insert(Arc::new(out));
                    }
                }
            }
            self.buckets = merged;
        }
    }

    /// Drops every bucket lying entirely before `floor` (eviction hook).
    /// A bucket straddling the floor is kept whole — see the module docs
    /// for why that is safe.
    pub fn evict_below(&mut self, floor: Timestamp) {
        let first_kept = self.bucket_of(floor);
        self.buckets = self.buckets.split_off(&first_kept);
    }

    /// Collects (into `out`, which is cleared first) every origin with at
    /// least one recorded event in a bucket overlapping the closed window
    /// `[a, b]`, sorted and deduplicated. The result is a superset of the
    /// origins with an actual event in `[a, b]` (bucket granularity +
    /// eviction staleness); callers filter through exact per-origin
    /// spans.
    pub fn origins_overlapping(&self, a: Timestamp, b: Timestamp, out: &mut Vec<NodeId>) {
        self.origins_overlapping_in_range(a, b, 0, NodeId::MAX, out);
    }

    /// [`ActiveOriginIndex::origins_overlapping`] restricted to origins in
    /// `[lo, hi)` — the sharded lookup behind parallel bounded searches.
    /// Each worker pulls only its own origin shard out of every bucket
    /// (binary search on the sorted bucket contents), so no worker ever
    /// materialises the full candidate list of the window.
    pub fn origins_overlapping_in_range(
        &self,
        a: Timestamp,
        b: Timestamp,
        lo: NodeId,
        hi: NodeId,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        if b < a || lo >= hi {
            return;
        }
        let (ba, bb) = (self.bucket_of(a), self.bucket_of(b));
        let mut runs = 0;
        for origins in self.buckets.range(ba..=bb).map(|(_, v)| v) {
            let s = origins.partition_point(|&u| u < lo);
            let e = origins.partition_point(|&u| u < hi);
            if s < e {
                out.extend_from_slice(&origins[s..e]);
                runs += 1;
            }
        }
        if runs > 1 {
            out.sort_unstable();
            out.dedup();
        }
    }

    /// Iterates the non-empty buckets in ascending key order as
    /// `(bucket_key, sorted origins)` — the serialization surface used by
    /// the out-of-core segment format.
    pub fn buckets(&self) -> impl Iterator<Item = (i64, &[NodeId])> + '_ {
        self.buckets.iter().map(|(&b, v)| (b, v.as_slice()))
    }

    /// Reassembles an index from its serialized parts: the bucket `width`
    /// and `(bucket_key, sorted origins)` entries. Inverse of
    /// [`ActiveOriginIndex::buckets`]; an index rebuilt from its own
    /// bucket iteration compares equal to the original.
    pub fn from_raw_parts(
        width: i64,
        entries: impl IntoIterator<Item = (i64, Vec<NodeId>)>,
    ) -> Self {
        debug_assert!(width >= 1, "bucket width must be positive, got {width}");
        Self { width, buckets: entries.into_iter().map(|(b, v)| (b, Arc::new(v))).collect() }
    }

    /// Number of non-empty buckets currently held.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in time units.
    pub fn bucket_width(&self) -> i64 {
        self.width
    }

    /// Removes every entry (the width is kept).
    pub fn clear(&mut self) {
        self.buckets.clear();
    }
}

/// Incremental bulk-registration helper: notes the events of one sorted
/// series into an [`ActiveOriginIndex`] while skipping consecutive events
/// that land in the same bucket (the common case for a dense series,
/// making registration ~O(buckets touched) instead of O(events)).
///
/// The skip key includes the bucket *width*: [`ActiveOriginIndex::record`]
/// may coarsen the index mid-batch, and a bucket id computed under the
/// old width must never suppress a record under the new one (ids can
/// collide across widths — skipping then would silently drop index
/// entries).
///
/// Used by the in-memory bulk build ([`crate::TimeSeriesGraph`]) and by
/// the streaming segment packer, which sees events one at a time and
/// cannot afford to buffer a whole series; both produce identical
/// indexes for identical event sequences.
#[derive(Debug, Default)]
pub struct SeriesRecorder {
    /// `(width, bucket)` of the last recorded event, if any.
    last: Option<(i64, i64)>,
}

impl SeriesRecorder {
    /// A fresh recorder with no event noted yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets the last-noted bucket. Call between series; the skip is
    /// only valid within one consecutive, time-sorted event run.
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// Notes one event of origin `u` at time `t`. Events must arrive in
    /// the order they appear within their series.
    #[inline]
    pub fn note(&mut self, index: &mut ActiveOriginIndex, u: NodeId, t: Timestamp) {
        let w = index.bucket_width();
        if self.last == Some((w, t.div_euclid(w))) {
            return;
        }
        index.record(u, t);
        let w = index.bucket_width(); // re-read: record may have coarsened
        self.last = Some((w, t.div_euclid(w)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected(idx: &ActiveOriginIndex, a: i64, b: i64) -> Vec<NodeId> {
        let mut v = Vec::new();
        idx.origins_overlapping(a, b, &mut v);
        v
    }

    #[test]
    fn records_and_queries_by_window() {
        let mut idx = ActiveOriginIndex::new();
        idx.record(3, 10);
        idx.record(1, 10);
        idx.record(1, 10); // duplicate is a no-op
        idx.record(7, 50);
        assert_eq!(collected(&idx, 0, 20), vec![1, 3]);
        assert_eq!(collected(&idx, 0, 100), vec![1, 3, 7]);
        assert_eq!(collected(&idx, 40, 60), vec![7]);
        assert_eq!(collected(&idx, 20, 40), Vec::<NodeId>::new());
        assert_eq!(collected(&idx, 60, 40), Vec::<NodeId>::new());
    }

    #[test]
    fn coarsening_keeps_bucket_count_bounded_and_answers_identically() {
        let mut idx = ActiveOriginIndex::new();
        for t in 0..5000i64 {
            idx.record((t % 97) as NodeId, t);
        }
        assert!(idx.num_buckets() <= MAX_BUCKETS, "{}", idx.num_buckets());
        assert!(idx.bucket_width() > 1);
        // Wide query sees everything.
        assert_eq!(collected(&idx, 0, 5000).len(), 97);
        // Narrow queries stay a superset of the truth at bucket
        // resolution: origin (t % 97) for t in [100, 120] must appear.
        let got = collected(&idx, 100, 120);
        for t in 100..=120i64 {
            assert!(got.contains(&((t % 97) as NodeId)), "t={t}");
        }
    }

    #[test]
    fn range_restricted_lookup_shards_the_full_answer() {
        let mut idx = ActiveOriginIndex::new();
        for t in 0..3000i64 {
            idx.record((t % 61) as NodeId, t);
        }
        for (a, b) in [(0, 3000), (100, 120), (2950, 2999), (5000, 6000)] {
            let full = collected(&idx, a, b);
            // Disjoint shards partition the full candidate set.
            let mut stitched = Vec::new();
            let mut shard = Vec::new();
            for lo in (0..70u32).step_by(13) {
                idx.origins_overlapping_in_range(a, b, lo, (lo + 13).min(70), &mut shard);
                assert!(shard.windows(2).all(|w| w[0] < w[1]), "shard must be sorted+deduped");
                assert!(shard.iter().all(|&u| u >= lo && u < (lo + 13).min(70)));
                stitched.extend_from_slice(&shard);
            }
            assert_eq!(stitched, full, "window [{a},{b}]");
        }
        // Degenerate ranges are empty.
        let mut out = vec![99];
        idx.origins_overlapping_in_range(0, 3000, 10, 10, &mut out);
        assert!(out.is_empty());
        idx.origins_overlapping_in_range(3000, 0, 0, 70, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn negative_timestamps_bucket_correctly() {
        let mut idx = ActiveOriginIndex::new();
        idx.preset_span(-1000, 1000);
        idx.record(5, -900);
        idx.record(6, 900);
        assert_eq!(collected(&idx, -1000, 0), vec![5]);
        assert_eq!(collected(&idx, 0, 1000), vec![6]);
        assert_eq!(collected(&idx, -1000, 1000), vec![5, 6]);
    }

    #[test]
    fn eviction_drops_whole_buckets_below_the_floor() {
        let mut idx = ActiveOriginIndex::new();
        idx.preset_span(0, 1000);
        for t in (0..1000i64).step_by(10) {
            idx.record((t / 10) as NodeId, t);
        }
        let before = idx.num_buckets();
        idx.evict_below(500);
        assert!(idx.num_buckets() < before);
        // Everything at or above the floor's bucket survives.
        let got = collected(&idx, 0, 1000);
        for t in (500..1000i64).step_by(10) {
            assert!(got.contains(&((t / 10) as NodeId)), "t={t}");
        }
        // Origins whose bucket lies entirely below the floor are gone.
        assert!(!got.contains(&0));
    }

    #[test]
    fn preset_span_targets_the_cap() {
        let mut idx = ActiveOriginIndex::new();
        idx.preset_span(0, 1_000_000);
        for t in (0..1_000_000i64).step_by(1000) {
            idx.record(1, t);
        }
        assert!(idx.num_buckets() <= MAX_BUCKETS);
        assert_eq!(collected(&idx, 0, 1_000_000), vec![1]);
    }

    #[test]
    fn raw_parts_round_trip_reproduces_the_index() {
        let mut idx = ActiveOriginIndex::new();
        idx.preset_span(0, 100_000);
        for t in (0..100_000i64).step_by(37) {
            idx.record((t % 53) as NodeId, t);
        }
        let rebuilt = ActiveOriginIndex::from_raw_parts(
            idx.bucket_width(),
            idx.buckets().map(|(b, v)| (b, v.to_vec())),
        );
        assert_eq!(rebuilt, idx);
    }

    #[test]
    fn clear_empties_but_keeps_width() {
        let mut idx = ActiveOriginIndex::new();
        idx.preset_span(0, 100_000);
        let w = idx.bucket_width();
        idx.record(1, 10);
        idx.clear();
        assert_eq!(idx.num_buckets(), 0);
        assert_eq!(idx.bucket_width(), w);
        assert_eq!(collected(&idx, 0, 100_000), Vec::<NodeId>::new());
    }
}
