//! Storage-tier metrics: process-wide statics the segment backend keeps
//! current, exported so any registry (the serve `METRICS` verb, the CLI
//! `--profile` report) can read them as gauge/counter closures.
//!
//! Statics rather than per-store handles because the interesting
//! quantity is the *process* total — a server may hold several epochs'
//! segments mapped at once during an epoch swap, and the mapped-bytes
//! gauge should show the sum, not the last.

use flowmotif_obs::{Counter, Gauge};

/// Bytes currently memory-mapped by open segment files (all live
/// [`crate::SegmentStore`]s; rises on open, falls on drop).
pub static SEGMENT_MAPPED_BYTES: Gauge = Gauge::new();

/// Estimated heap-resident bytes of open segment stores (the
/// deserialized activity indexes — the only O(index) state; the mapped
/// body is pages the OS may evict at will).
pub static SEGMENT_RESIDENT_BYTES: Gauge = Gauge::new();

/// Event/flow-prefix section reads served by segment stores — one per
/// series resolution, the accesses that touch potentially cold mapped
/// pages. Ticked through a per-thread batch of 1024 (a locked RMW per
/// read would fence the hottest search loop), so the total lags true
/// reads by at most 1024 per live thread.
pub static SEGMENT_SECTION_READS: Counter = Counter::new();

/// Segment files opened and validated since process start.
pub static SEGMENT_OPENS: Counter = Counter::new();
