//! Error type shared by graph construction and I/O.

use std::fmt;
use std::io;

/// Errors raised while building or loading interaction graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An interaction referenced a node id that overflows `u32`.
    NodeIdOverflow(u64),
    /// An interaction carried a non-positive or non-finite flow value.
    InvalidFlow {
        /// Offending flow value.
        flow: f64,
        /// Source node of the interaction.
        from: u64,
        /// Target node of the interaction.
        to: u64,
    },
    /// A self-loop `u -> u` was supplied and the builder forbids them.
    SelfLoop(u64),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A packed segment file was rejected (bad magic, checksum mismatch,
    /// truncation, out-of-bounds section, …).
    Segment {
        /// Description of the problem.
        message: String,
    },
    /// An error raised while reading a specific file, carrying the path.
    InFile {
        /// Path of the file being read.
        path: std::path::PathBuf,
        /// The underlying error.
        source: Box<GraphError>,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl GraphError {
    /// Wraps this error with the path of the file being processed, so
    /// callers juggling several inputs can tell which one failed.
    pub fn in_file(self, path: impl Into<std::path::PathBuf>) -> GraphError {
        GraphError::InFile { path: path.into(), source: Box::new(self) }
    }

    /// Builds a segment-format rejection error.
    pub(crate) fn segment(message: impl Into<String>) -> GraphError {
        GraphError::Segment { message: message.into() }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeIdOverflow(id) => {
                write!(f, "node id {id} exceeds the u32 node-id space")
            }
            GraphError::InvalidFlow { flow, from, to } => write!(
                f,
                "interaction {from}->{to} has invalid flow {flow}; flows must be finite and > 0"
            ),
            GraphError::SelfLoop(u) => write!(f, "self-loop on node {u} is not allowed"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Segment { message } => write!(f, "invalid segment file: {message}"),
            GraphError::InFile { path, source } => write!(f, "{}: {source}", path.display()),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::InFile { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::InvalidFlow { flow: -1.0, from: 3, to: 4 };
        assert!(e.to_string().contains("3->4"));
        assert!(e.to_string().contains("-1"));

        let e = GraphError::Parse { line: 7, message: "bad field".into() };
        assert!(e.to_string().contains("line 7"));

        let e = GraphError::NodeIdOverflow(1 << 40);
        assert!(e.to_string().contains("u32"));
    }

    #[test]
    fn in_file_adds_path_context_and_keeps_the_source() {
        use std::error::Error;
        let e = GraphError::Parse { line: 7, message: "bad field".into() }.in_file("data/x.txt");
        let msg = e.to_string();
        assert!(msg.contains("x.txt"), "{msg}");
        assert!(msg.contains("line 7"), "{msg}");
        assert!(e.source().unwrap().to_string().contains("line 7"));
    }

    #[test]
    fn segment_errors_describe_the_problem() {
        let e = GraphError::segment("checksum mismatch");
        assert!(e.to_string().contains("checksum mismatch"));
        assert!(e.to_string().contains("segment"));
    }

    #[test]
    fn io_error_is_wrapped_with_source() {
        use std::error::Error;
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
