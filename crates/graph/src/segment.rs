//! The packed on-disk graph segment: a flat, checksummed, little-endian
//! file a [`SegmentStore`] serves through a read-only memory map.
//!
//! # File layout (`graph.seg`)
//!
//! ```text
//! header (168 B):  magic "FLOWSEG1" | version | num_nodes | num_pairs
//!                  | num_events | time_lo | time_hi | 11 section offsets
//!                  | fnv64 in-section checksum | file_len
//!                  | fnv64 header checksum
//! out_start:       u32  x (N+1)   CSR offsets into targets/origins
//! targets:         u32  x P       pair target, sorted by (origin, target)
//! origins:         u32  x P       pair origin
//! event_start:     u64  x (P+1)   per-pair offsets into events
//! origin_span:     i64  x 2N      per-origin [min,max] out-edge time
//!                                 (MAX/MIN sentinel when inactive)
//! events:          16 B x E       (time i64, flow f64) sorted per pair
//! prefix:          f64  x (E+P)   per-pair flow prefix sums, each pair
//!                                 led by 0.0 (pair p starts at
//!                                 event_start[p] + p)
//! in_start:        u32  x (N+1)   transposed CSR offsets (v2)
//! in_pairs:        u32  x P       pair ids grouped by target, each
//!                                 group sorted by source (v2)
//! in_sources:      u32  x P       source of each in-pair (SoA id
//!                                 column, v2)
//! index:           serialized ActiveOriginIndex (width, bucket keys,
//!                                 bucket offsets, origin entries)
//! ```
//!
//! The three v2 in-adjacency sections carry their own chained fnv64
//! checksum in the header (verified at open, O(nodes + pairs)) — they
//! are *derived* from the forward sections, so silent divergence would
//! make the worst-case-optimal P1 driver drop matches rather than crash.
//!
//! Every section offset is 8-aligned, so the store reinterprets the map
//! as typed slices directly — opening a segment is O(header + index),
//! not O(data). Sections mirror [`TimeSeriesGraph`]'s internals element
//! for element (same sort, same sequential prefix accumulation, same
//! activity index construction), which is what makes search results on
//! the two backends bit-identical.
//!
//! [`SegmentWriter`] streams a segment out pair by pair while holding
//! O(nodes + current pair) state, and [`pack_edge_list`] feeds it from
//! an external merge sort over bounded-memory sorted runs — packing
//! never materialises the graph.

use crate::active::{ActiveOriginIndex, SeriesRecorder};
use crate::error::GraphError;
use crate::event::{Event, Flow, NodeId, PairId, Timestamp};
use crate::io::EdgeListRecords;
use crate::mmap::Mmap;
use crate::series::SeriesRef;
use crate::tsgraph::TimeSeriesGraph;
use crate::window::TimeWindow;
use crate::GraphStore;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// File name of the packed segment inside a segment directory.
pub const SEGMENT_FILE: &str = "graph.seg";

const MAGIC: [u8; 8] = *b"FLOWSEG1";
/// Format version 2 adds the transposed (in-edge) adjacency sections
/// `in_start`/`in_pairs`/`in_sources` plus their own checksum header
/// word — the worst-case-optimal P1 extension proposes from in-lists,
/// so the reverse adjacency must be servable straight off the map.
/// Version-1 files are rejected; re-run `flowmotif pack` to upgrade.
const VERSION: u64 = 2;
/// magic + 20 u64/i64 header words (see the layout above).
const HEADER_LEN: usize = 8 + 20 * 8;
/// Sentinel span of an origin with no out-edge interactions (matches the
/// in-memory representation).
const EMPTY_SPAN: (Timestamp, Timestamp) = (Timestamp::MAX, Timestamp::MIN);

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit continuation: folds `bytes` into a running state, so
/// multi-section checksums chain without concatenating buffers.
fn fnv64_acc(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit, the header checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_acc(FNV_SEED, bytes)
}

#[inline]
fn align8(n: u64) -> u64 {
    n.div_ceil(8) * 8
}

/// Resolves a user-supplied path to the segment file: a directory means
/// "the `graph.seg` inside it".
pub fn segment_path(path: &Path) -> PathBuf {
    if path.is_dir() {
        path.join(SEGMENT_FILE)
    } else {
        path.to_path_buf()
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streams a segment file out pair by pair (pairs strictly ascending by
/// `(origin, target)`, events non-decreasing by time within a pair —
/// exactly the order [`TimeSeriesGraph`] stores). Sections go to
/// temporary spill files next to the target and are concatenated behind
/// the header on [`SegmentWriter::finish`]; resident state is O(index +
/// pairs + constants) — the transposed adjacency keeps one 12-byte
/// `(target, source, pair)` triple per pair until `finish` sorts and
/// spills it, still far below O(interactions).
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    num_nodes: usize,
    sections: Vec<BufWriter<File>>,
    /// Provided global time span (also the index preset, so the packed
    /// activity index starts from the same bucket width as a bulk
    /// rebuild).
    span: Option<(Timestamp, Timestamp)>,
    index: ActiveOriginIndex,
    recorder: SeriesRecorder,
    cur_pair: Option<(NodeId, NodeId)>,
    cur_origin: Option<NodeId>,
    origin_span: (Timestamp, Timestamp),
    pairs_written: u64,
    events_written: u64,
    /// `out_start` entries emitted so far (index of the next node).
    out_filled: usize,
    /// `origin_span` entries emitted so far.
    span_filled: usize,
    /// `(target, source, pair)` triples, transposed into the in-edge
    /// sections on `finish`.
    transpose: Vec<(NodeId, NodeId, PairId)>,
    last_time: Timestamp,
    acc: Flow,
}

/// Section order inside the writer (and the file).
const S_OUT_START: usize = 0;
const S_TARGETS: usize = 1;
const S_ORIGINS: usize = 2;
const S_EVENT_START: usize = 3;
const S_ORIGIN_SPAN: usize = 4;
const S_EVENTS: usize = 5;
const S_PREFIX: usize = 6;
const S_IN_START: usize = 7;
const S_IN_PAIRS: usize = 8;
const S_IN_SOURCES: usize = 9;
const NUM_SPILL: usize = 10;
/// Section slot of the serialized activity index (after every spill).
const S_INDEX: usize = NUM_SPILL;
/// Sections in the file: the spill sections plus the trailing index.
const NUM_SECTIONS: usize = NUM_SPILL + 1;

impl SegmentWriter {
    /// Opens a writer targeting `dir/graph.seg`. `num_nodes` and the
    /// exact global `time_span` must be known up front (one streaming
    /// pass over the input provides both).
    pub fn create(
        dir: &Path,
        num_nodes: usize,
        span: Option<(Timestamp, Timestamp)>,
    ) -> Result<Self, GraphError> {
        std::fs::create_dir_all(dir)?;
        let mut sections = Vec::with_capacity(NUM_SPILL);
        for i in 0..NUM_SPILL {
            let f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(Self::spill_path(dir, i))?;
            sections.push(BufWriter::new(f));
        }
        let mut index = ActiveOriginIndex::new();
        if let Some((lo, hi)) = span {
            index.preset_span(lo, hi);
        }
        let mut w = Self {
            dir: dir.to_path_buf(),
            num_nodes,
            sections,
            span,
            index,
            recorder: SeriesRecorder::new(),
            cur_pair: None,
            cur_origin: None,
            origin_span: EMPTY_SPAN,
            pairs_written: 0,
            events_written: 0,
            out_filled: 0,
            span_filled: 0,
            transpose: Vec::new(),
            last_time: Timestamp::MIN,
            acc: 0.0,
        };
        // out_start[0] = 0 and event_start[0] = 0.
        w.write(S_OUT_START, &0u32.to_le_bytes())?;
        w.write(S_EVENT_START, &0u64.to_le_bytes())?;
        w.out_filled = 1;
        Ok(w)
    }

    fn spill_path(dir: &Path, i: usize) -> PathBuf {
        dir.join(format!("{SEGMENT_FILE}.spill{i}"))
    }

    #[inline]
    fn write(&mut self, section: usize, bytes: &[u8]) -> Result<(), GraphError> {
        self.sections[section].write_all(bytes)?;
        Ok(())
    }

    /// Seals the previous pair's event range and prefix run.
    fn end_pair(&mut self) -> Result<(), GraphError> {
        if self.cur_pair.is_some() {
            self.write(S_EVENT_START, &self.events_written.to_le_bytes())?;
        }
        Ok(())
    }

    /// Seals the previous origin's activity span.
    fn end_origin(&mut self) -> Result<(), GraphError> {
        if self.cur_origin.is_some() {
            let (lo, hi) = self.origin_span;
            self.write(S_ORIGIN_SPAN, &lo.to_le_bytes())?;
            self.write(S_ORIGIN_SPAN, &hi.to_le_bytes())?;
            self.span_filled += 1;
        }
        Ok(())
    }

    /// Emits `EMPTY_SPAN` for every origin up to (excluding) `u`.
    fn fill_spans_to(&mut self, u: usize) -> Result<(), GraphError> {
        while self.span_filled < u {
            self.write(S_ORIGIN_SPAN, &EMPTY_SPAN.0.to_le_bytes())?;
            self.write(S_ORIGIN_SPAN, &EMPTY_SPAN.1.to_le_bytes())?;
            self.span_filled += 1;
        }
        Ok(())
    }

    /// Starts the next pair. Pairs must arrive strictly ascending by
    /// `(u, v)`; `u` and `v` must be below the declared node count.
    pub fn begin_pair(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        assert!(
            self.cur_pair.is_none_or(|last| last < (u, v)),
            "pairs must be strictly ascending: {:?} then {:?}",
            self.cur_pair,
            (u, v)
        );
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "pair ({u}, {v}) outside the declared {} nodes",
            self.num_nodes
        );
        self.end_pair()?;
        if self.cur_origin != Some(u) {
            self.end_origin()?;
            self.fill_spans_to(u as usize)?;
            self.cur_origin = Some(u);
            self.origin_span = EMPTY_SPAN;
            // out_start[x] for every node through u = pairs before u.
            while self.out_filled <= u as usize {
                let n = self.pairs_written as u32;
                self.write(S_OUT_START, &n.to_le_bytes())?;
                self.out_filled += 1;
            }
        }
        self.write(S_TARGETS, &v.to_le_bytes())?;
        self.write(S_ORIGINS, &u.to_le_bytes())?;
        self.write(S_PREFIX, &0.0f64.to_le_bytes())?;
        self.transpose.push((v, u, self.pairs_written as PairId));
        self.cur_pair = Some((u, v));
        self.pairs_written += 1;
        self.last_time = Timestamp::MIN;
        self.acc = 0.0;
        self.recorder.reset();
        Ok(())
    }

    /// Appends one event to the current pair (times non-decreasing).
    pub fn push_event(&mut self, t: Timestamp, f: Flow) -> Result<(), GraphError> {
        let (u, _) = self.cur_pair.expect("push_event before begin_pair");
        assert!(t >= self.last_time, "events must be sorted by time within a pair");
        self.last_time = t;
        let mut ev = [0u8; 16];
        ev[..8].copy_from_slice(&t.to_le_bytes());
        ev[8..].copy_from_slice(&f.to_le_bytes());
        self.write(S_EVENTS, &ev)?;
        // Same sequential accumulation as `InteractionSeries`, so the
        // stored prefixes are bit-identical to the in-memory ones.
        self.acc += f;
        let acc = self.acc;
        self.write(S_PREFIX, &acc.to_le_bytes())?;
        self.events_written += 1;
        self.origin_span.0 = self.origin_span.0.min(t);
        self.origin_span.1 = self.origin_span.1.max(t);
        self.recorder.note(&mut self.index, u, t);
        Ok(())
    }

    /// Finalizes the segment: pads out the per-node sections, assembles
    /// the file behind a checksummed header, removes the spill files and
    /// returns the segment path.
    pub fn finish(mut self) -> Result<PathBuf, GraphError> {
        self.end_pair()?;
        self.end_origin()?;
        self.fill_spans_to(self.num_nodes)?;
        while self.out_filled <= self.num_nodes {
            let n = self.pairs_written as u32;
            self.write(S_OUT_START, &n.to_le_bytes())?;
            self.out_filled += 1;
        }

        // Transposed (in-edge) adjacency: group pairs by target. Within
        // a target, ascending pair id *is* ascending source order (pairs
        // were written sorted by `(origin, target)`), so sorting by
        // `(target, pair)` yields in-lists sorted by source — the order
        // the galloping intersection in P1 requires. The chained fnv64
        // over the exact section bytes goes into its own header word.
        let transpose = std::mem::take(&mut self.transpose);
        let mut in_start = vec![0u32; self.num_nodes + 1];
        for &(v, _, _) in &transpose {
            in_start[v as usize + 1] += 1;
        }
        for i in 0..self.num_nodes {
            in_start[i + 1] += in_start[i];
        }
        let mut grouped = transpose;
        grouped.sort_unstable_by_key(|&(v, _, p)| (v, p));
        let mut in_checksum = FNV_SEED;
        for &s in &in_start {
            let b = s.to_le_bytes();
            in_checksum = fnv64_acc(in_checksum, &b);
            self.write(S_IN_START, &b)?;
        }
        for &(_, _, p) in &grouped {
            let b = p.to_le_bytes();
            in_checksum = fnv64_acc(in_checksum, &b);
            self.write(S_IN_PAIRS, &b)?;
        }
        for &(_, u, _) in &grouped {
            let b = u.to_le_bytes();
            in_checksum = fnv64_acc(in_checksum, &b);
            self.write(S_IN_SOURCES, &b)?;
        }

        // Serialize the activity index.
        let mut index_bytes: Vec<u8> = Vec::new();
        index_bytes.extend_from_slice(&self.index.bucket_width().to_le_bytes());
        let buckets: Vec<(i64, &[NodeId])> = self.index.buckets().collect();
        index_bytes.extend_from_slice(&(buckets.len() as u64).to_le_bytes());
        for &(key, _) in &buckets {
            index_bytes.extend_from_slice(&key.to_le_bytes());
        }
        let mut start = 0u64;
        index_bytes.extend_from_slice(&start.to_le_bytes());
        for &(_, origins) in &buckets {
            start += origins.len() as u64;
            index_bytes.extend_from_slice(&start.to_le_bytes());
        }
        for &(_, origins) in &buckets {
            for &u in origins {
                index_bytes.extend_from_slice(&u.to_le_bytes());
            }
        }

        // Compute the layout and write the final file.
        let mut spill: Vec<File> = Vec::with_capacity(NUM_SPILL);
        for w in self.sections.drain(..) {
            let mut f = w.into_inner().map_err(|e| GraphError::Io(e.into_error()))?;
            f.flush()?;
            spill.push(f);
        }
        let mut offsets = [0u64; NUM_SECTIONS];
        let mut cursor = HEADER_LEN as u64;
        for (i, f) in spill.iter().enumerate() {
            offsets[i] = cursor;
            cursor = align8(cursor + f.metadata()?.len());
        }
        offsets[S_INDEX] = cursor;
        let file_len = cursor + index_bytes.len() as u64;

        let (time_lo, time_hi) = self.span.unwrap_or(EMPTY_SPAN);
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        for word in [
            VERSION,
            self.num_nodes as u64,
            self.pairs_written,
            self.events_written,
            time_lo as u64,
            time_hi as u64,
        ] {
            header.extend_from_slice(&word.to_le_bytes());
        }
        for off in offsets {
            header.extend_from_slice(&off.to_le_bytes());
        }
        header.extend_from_slice(&in_checksum.to_le_bytes());
        header.extend_from_slice(&file_len.to_le_bytes());
        header.extend_from_slice(&fnv64(&header).to_le_bytes());
        debug_assert_eq!(header.len(), HEADER_LEN);

        let final_path = self.dir.join(SEGMENT_FILE);
        let tmp_path = self.dir.join(format!("{SEGMENT_FILE}.tmp"));
        {
            let mut out = BufWriter::new(File::create(&tmp_path)?);
            out.write_all(&header)?;
            let mut written = HEADER_LEN as u64;
            for (i, mut f) in spill.into_iter().enumerate() {
                while written < offsets[i] {
                    out.write_all(&[0u8])?;
                    written += 1;
                }
                f.seek(std::io::SeekFrom::Start(0))?;
                written += std::io::copy(&mut f, &mut out)?;
            }
            while written < offsets[S_INDEX] {
                out.write_all(&[0u8])?;
                written += 1;
            }
            out.write_all(&index_bytes)?;
            out.flush()?;
        }
        for i in 0..NUM_SPILL {
            let _ = std::fs::remove_file(Self::spill_path(&self.dir, i));
        }
        std::fs::rename(&tmp_path, &final_path)?;
        Ok(final_path)
    }
}

/// Packs an in-memory graph into a segment at `dir/graph.seg` (the
/// non-streaming convenience; [`pack_edge_list`] is the out-of-core
/// path).
pub fn write_segment(g: &TimeSeriesGraph, dir: &Path) -> Result<PathBuf, GraphError> {
    let mut w = SegmentWriter::create(dir, g.num_nodes(), g.time_span())?;
    for p in 0..g.num_pairs() as PairId {
        let (u, v) = g.pair(p);
        w.begin_pair(u, v)?;
        for e in g.series(p).events() {
            w.push_event(e.time, e.flow)?;
        }
    }
    w.finish()
}

// ---------------------------------------------------------------------
// External-sort packer
// ---------------------------------------------------------------------

/// One edge-list record in a sort run: the `(u, v, t, seq)` key ordering
/// reproduces the in-memory build exactly — pairs sorted by `(u, v)`,
/// events time-sorted with input order breaking ties (the builder's
/// stable sort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct RunRecord {
    u: NodeId,
    v: NodeId,
    t: Timestamp,
    seq: u64,
}

const RUN_RECORD_LEN: usize = 32;

/// Default records per sorted run (32 B each, so ~32 MiB of sort buffer).
pub const DEFAULT_RUN_RECORDS: usize = 1 << 20;

/// Packing summary returned by [`pack_edge_list`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackStats {
    /// Interactions packed.
    pub interactions: u64,
    /// Distinct `(u, v)` pairs.
    pub pairs: u64,
    /// Node count (max id + 1).
    pub nodes: usize,
    /// Sorted runs merged (1 means the input fit one sort buffer).
    pub runs: usize,
}

flowmotif_util::impl_to_json!(PackStats { interactions, pairs, nodes, runs });

/// Compiles a whitespace/comma-separated `from to time flow` edge list
/// into a packed segment at `out_dir/graph.seg` using an external merge
/// sort: the input is streamed into sorted runs of at most
/// `run_records` records (32 B each) which a k-way merge then streams
/// through a [`SegmentWriter`]. Peak memory is O(run buffer + nodes'
/// index), never O(interactions). Validation matches
/// [`crate::GraphBuilder`]: non-finite or non-positive flows and
/// self-loops are rejected.
pub fn pack_edge_list(
    input: &Path,
    out_dir: &Path,
    run_records: usize,
) -> Result<PackStats, GraphError> {
    let run_records = run_records.max(1);
    std::fs::create_dir_all(out_dir)?;

    // Pass 1: stream the input into sorted runs, learning the node count
    // and the global time span.
    let file = File::open(input).map_err(|e| GraphError::from(e).in_file(input))?;
    let mut buf: Vec<(RunRecord, Flow)> = Vec::with_capacity(run_records.min(1 << 20));
    let mut runs: Vec<PathBuf> = Vec::new();
    let mut num_nodes = 0usize;
    let mut span: Option<(Timestamp, Timestamp)> = None;
    let mut seq = 0u64;
    let result = (|| -> Result<(), GraphError> {
        for rec in EdgeListRecords::new(file) {
            let (u, v, t, f) = rec?;
            if !(f.is_finite() && f > 0.0) {
                return Err(GraphError::InvalidFlow { flow: f, from: u as u64, to: v as u64 });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u as u64));
            }
            num_nodes = num_nodes.max(u.max(v) as usize + 1);
            span = Some(span.map_or((t, t), |(lo, hi)| (lo.min(t), hi.max(t))));
            buf.push((RunRecord { u, v, t, seq }, f));
            seq += 1;
            if buf.len() >= run_records {
                flush_run(&mut buf, out_dir, &mut runs)?;
            }
        }
        flush_run(&mut buf, out_dir, &mut runs)?;

        // Pass 2: k-way merge the runs straight into the writer.
        let mut writer = SegmentWriter::create(out_dir, num_nodes, span)?;
        let mut sources = Vec::with_capacity(runs.len());
        for path in &runs {
            sources.push(RunReader::open(path)?);
        }
        // Flows ride along as raw bits (`f64` is not `Ord`); the
        // `(record, source)` key is unique, so they never affect ordering.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(RunRecord, usize, u64)>> =
            std::collections::BinaryHeap::with_capacity(sources.len());
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some((rec, f)) = src.next()? {
                heap.push(std::cmp::Reverse((rec, i, f.to_bits())));
            }
        }
        let mut cur: Option<(NodeId, NodeId)> = None;
        while let Some(std::cmp::Reverse((rec, i, bits))) = heap.pop() {
            if cur != Some((rec.u, rec.v)) {
                writer.begin_pair(rec.u, rec.v)?;
                cur = Some((rec.u, rec.v));
            }
            writer.push_event(rec.t, f64::from_bits(bits))?;
            if let Some((next, nf)) = sources[i].next()? {
                heap.push(std::cmp::Reverse((next, i, nf.to_bits())));
            }
        }
        writer.finish()?;
        Ok(())
    })();
    let run_count = runs.len();
    for path in runs {
        let _ = std::fs::remove_file(path);
    }
    result?;
    Ok(PackStats {
        interactions: seq,
        pairs: SegmentStore::open(out_dir)?.num_pairs() as u64,
        nodes: num_nodes,
        runs: run_count,
    })
}

/// Sorts and spills one run buffer (no-op when empty).
fn flush_run(
    buf: &mut Vec<(RunRecord, Flow)>,
    dir: &Path,
    runs: &mut Vec<PathBuf>,
) -> Result<(), GraphError> {
    if buf.is_empty() {
        return Ok(());
    }
    // `seq` is globally unique, so the key is total and the sort can be
    // unstable without losing determinism.
    buf.sort_unstable_by_key(|&(rec, _)| rec);
    let path = dir.join(format!("{SEGMENT_FILE}.run{}", runs.len()));
    let mut w = BufWriter::new(File::create(&path)?);
    for &(rec, f) in buf.iter() {
        let mut bytes = [0u8; RUN_RECORD_LEN];
        bytes[..4].copy_from_slice(&rec.u.to_le_bytes());
        bytes[4..8].copy_from_slice(&rec.v.to_le_bytes());
        bytes[8..16].copy_from_slice(&rec.t.to_le_bytes());
        bytes[16..24].copy_from_slice(&rec.seq.to_le_bytes());
        bytes[24..].copy_from_slice(&f.to_le_bytes());
        w.write_all(&bytes)?;
    }
    w.flush()?;
    runs.push(path);
    buf.clear();
    Ok(())
}

/// Buffered reader over one sorted run file.
#[derive(Debug)]
struct RunReader {
    reader: BufReader<File>,
}

impl RunReader {
    fn open(path: &Path) -> Result<Self, GraphError> {
        Ok(Self { reader: BufReader::new(File::open(path)?) })
    }

    fn next(&mut self) -> Result<Option<(RunRecord, Flow)>, GraphError> {
        let mut bytes = [0u8; RUN_RECORD_LEN];
        match self.reader.read_exact(&mut bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let rec = RunRecord {
            u: u32::from_le_bytes(bytes[..4].try_into().unwrap()),
            v: u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            t: i64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            seq: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
        };
        let f = f64::from_le_bytes(bytes[24..].try_into().unwrap());
        Ok(Some((rec, f)))
    }
}

// ---------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------

/// A read-only [`GraphStore`] over a memory-mapped segment file.
///
/// Opening validates the header (magic, version, checksum, declared vs
/// actual file length, section bounds and alignment) and deserializes
/// the small activity index; everything else is viewed in place, so
/// resident memory stays O(index) no matter how large the graph is and
/// the OS pages event data in and out on demand. Accessors bound-check
/// every slice they cut, so a corrupt body found past the O(1) header
/// validation panics rather than reading out of bounds.
#[derive(Debug)]
pub struct SegmentStore {
    map: Mmap,
    num_nodes: usize,
    num_pairs: usize,
    num_events: usize,
    time_lo: Timestamp,
    time_hi: Timestamp,
    offsets: [usize; NUM_SECTIONS],
    index: ActiveOriginIndex,
    /// Heap-resident estimate (the deserialized index), mirrored into
    /// [`crate::metrics::SEGMENT_RESIDENT_BYTES`] for this store's
    /// lifetime.
    resident: u64,
}

impl SegmentStore {
    /// Opens and validates `path` (a segment file, or a directory
    /// containing `graph.seg`).
    pub fn open(path: &Path) -> Result<Self, GraphError> {
        let file_path = segment_path(path);
        Self::open_file(&file_path).map_err(|e| e.in_file(&file_path))
    }

    fn open_file(path: &Path) -> Result<Self, GraphError> {
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        let bytes = map.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(GraphError::segment(format!(
                "file too short for a segment header ({} < {HEADER_LEN} bytes)",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(GraphError::segment("bad magic (not a flowmotif segment)"));
        }
        let word = |i: usize| -> u64 {
            u64::from_le_bytes(bytes[8 + i * 8..16 + i * 8].try_into().unwrap())
        };
        let stored_sum = word(19);
        if fnv64(&bytes[..HEADER_LEN - 8]) != stored_sum {
            return Err(GraphError::segment("header checksum mismatch"));
        }
        if word(0) != VERSION {
            return Err(GraphError::segment(format!("unsupported segment version {}", word(0))));
        }
        let file_len = word(18);
        if file_len != bytes.len() as u64 {
            return Err(GraphError::segment(format!(
                "truncated or padded file: header declares {file_len} bytes, found {}",
                bytes.len()
            )));
        }
        let num_nodes = word(1) as usize;
        let num_pairs = word(2) as usize;
        let num_events = word(3) as usize;
        let time_lo = word(4) as i64;
        let time_hi = word(5) as i64;

        let mut offsets = [0usize; NUM_SECTIONS];
        let sizes: [u64; NUM_SECTIONS] = [
            4 * (num_nodes as u64 + 1),                 // out_start
            4 * num_pairs as u64,                       // targets
            4 * num_pairs as u64,                       // origins
            8 * (num_pairs as u64 + 1),                 // event_start
            16 * num_nodes as u64,                      // origin_span
            16 * num_events as u64,                     // events
            8 * (num_events as u64 + num_pairs as u64), // prefix
            4 * (num_nodes as u64 + 1),                 // in_start
            4 * num_pairs as u64,                       // in_pairs
            4 * num_pairs as u64,                       // in_sources
            0,                                          // index (rest of file)
        ];
        for i in 0..NUM_SECTIONS {
            let off = word(6 + i);
            let size = if i == S_INDEX { file_len.saturating_sub(off) } else { sizes[i] };
            if off % 8 != 0
                || off < HEADER_LEN as u64
                || off.checked_add(size).is_none_or(|end| end > file_len)
            {
                return Err(GraphError::segment(format!(
                    "section {i} out of bounds (offset {off}, size {size}, file {file_len})"
                )));
            }
            offsets[i] = off as usize;
        }

        // The in-adjacency is *derived* data: a divergence from the
        // forward sections would silently drop matches in the WCO P1
        // driver instead of crashing, so it gets its own verification
        // (chained fnv64 over the exact typed byte ranges, excluding the
        // alignment padding between sections).
        let mut in_sum = FNV_SEED;
        for (i, &size) in sizes.iter().enumerate().take(S_IN_SOURCES + 1).skip(S_IN_START) {
            in_sum = fnv64_acc(in_sum, &bytes[offsets[i]..offsets[i] + size as usize]);
        }
        if in_sum != word(17) {
            return Err(GraphError::segment("in-adjacency checksum mismatch"));
        }

        let index = Self::parse_index(&bytes[offsets[S_INDEX]..], num_nodes)?;
        // Resident ≈ the deserialized index (per-bucket key + Vec header
        // + 4 B entries) plus the store struct itself; the mapped body is
        // counted separately as evictable bytes.
        let resident = (std::mem::size_of::<Self>()
            + index
                .buckets()
                .map(|(_, origins)| 8 + std::mem::size_of::<Vec<NodeId>>() + 4 * origins.len())
                .sum::<usize>()) as u64;
        crate::metrics::SEGMENT_RESIDENT_BYTES.add(resident);
        crate::metrics::SEGMENT_OPENS.inc();
        Ok(Self {
            map,
            num_nodes,
            num_pairs,
            num_events,
            time_lo,
            time_hi,
            offsets,
            index,
            resident,
        })
    }

    /// Deserializes the activity index section into a live
    /// [`ActiveOriginIndex`] (the only O(index)-sized work at open).
    fn parse_index(bytes: &[u8], num_nodes: usize) -> Result<ActiveOriginIndex, GraphError> {
        let err = |m: &str| GraphError::segment(format!("activity index: {m}"));
        let need = |n: usize| -> Result<(), GraphError> {
            if bytes.len() < n {
                return Err(err("section truncated"));
            }
            Ok(())
        };
        need(16)?;
        let width = i64::from_le_bytes(bytes[..8].try_into().unwrap());
        if width < 1 {
            return Err(err("bucket width must be positive"));
        }
        let nb = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let keys_off = 16;
        let starts_off = keys_off + 8 * nb;
        let entries_off = starts_off + 8 * (nb + 1);
        need(entries_off)?;
        let total_entries = (bytes.len() - entries_off) / 4;
        let mut entries: Vec<(i64, Vec<NodeId>)> = Vec::with_capacity(nb);
        let mut prev_start = 0u64;
        for b in 0..nb {
            let key = i64::from_le_bytes(
                bytes[keys_off + 8 * b..keys_off + 8 * b + 8].try_into().unwrap(),
            );
            let s = u64::from_le_bytes(
                bytes[starts_off + 8 * b..starts_off + 8 * b + 8].try_into().unwrap(),
            );
            let e = u64::from_le_bytes(
                bytes[starts_off + 8 * (b + 1)..starts_off + 8 * (b + 2)].try_into().unwrap(),
            );
            if s != prev_start || e < s || e > total_entries as u64 {
                return Err(err("bucket offsets are not a monotone partition"));
            }
            prev_start = e;
            let mut origins = Vec::with_capacity((e - s) as usize);
            for i in s..e {
                let off = entries_off + 4 * i as usize;
                let u = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
                if (u as usize) >= num_nodes {
                    return Err(err("origin entry out of node range"));
                }
                origins.push(u);
            }
            entries.push((key, origins));
        }
        Ok(ActiveOriginIndex::from_raw_parts(width, entries))
    }

    /// Ticks the section-read counter through a thread-local batch.
    /// Series resolution runs millions of times per search, and even a
    /// relaxed `fetch_add` on a shared `static` is a locked RMW — a
    /// full fence on x86 — per read: measured 2.6x on the packed-search
    /// bench. Batching keeps the hot path at a TLS load/store and makes
    /// the global counter exact to within 1024 reads per live thread.
    #[inline]
    fn tick_section_read() {
        use std::cell::Cell;
        thread_local! {
            static PENDING: Cell<u32> = const { Cell::new(0) };
        }
        PENDING.with(|p| {
            let n = p.get() + 1;
            if n == 1024 {
                crate::metrics::SEGMENT_SECTION_READS.add(u64::from(n));
                p.set(0);
            } else {
                p.set(n);
            }
        });
    }

    /// Cuts a typed slice out of a section. Bounds are re-checked here
    /// (not just at open) so index corruption panics instead of reading
    /// out of bounds; alignment holds because the map base and every
    /// section offset are 8-aligned.
    #[inline]
    fn typed<T>(&self, section: usize, len: usize) -> &[T] {
        let off = self.offsets[section];
        let bytes = &self.map.bytes()[off..off + len * std::mem::size_of::<T>()];
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        // SAFETY: the range is in bounds (checked by the slice above),
        // 8-aligned, and T is one of the plain-old-data section types
        // (u32/u64/i64/f64/Event) for which any bit pattern is valid.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, len) }
    }

    #[inline]
    fn out_start(&self) -> &[u32] {
        self.typed(S_OUT_START, self.num_nodes + 1)
    }

    #[inline]
    fn targets(&self) -> &[u32] {
        self.typed(S_TARGETS, self.num_pairs)
    }

    #[inline]
    fn origins(&self) -> &[u32] {
        self.typed(S_ORIGINS, self.num_pairs)
    }

    #[inline]
    fn event_start(&self) -> &[u64] {
        self.typed(S_EVENT_START, self.num_pairs + 1)
    }

    #[inline]
    fn origin_spans(&self) -> &[i64] {
        self.typed(S_ORIGIN_SPAN, 2 * self.num_nodes)
    }

    #[inline]
    fn in_start(&self) -> &[u32] {
        self.typed(S_IN_START, self.num_nodes + 1)
    }

    #[inline]
    fn in_pairs(&self) -> &[u32] {
        self.typed(S_IN_PAIRS, self.num_pairs)
    }

    #[inline]
    fn in_sources(&self) -> &[u32] {
        self.typed(S_IN_SOURCES, self.num_pairs)
    }

    /// Sequentially touches one byte per page of the mapped segment so a
    /// cold file is faulted in by the kernel's readahead (large, ordered
    /// requests) instead of P1's random-access pattern (one 4 KiB fault
    /// per miss). Returns the number of bytes spanned. The XOR
    /// accumulator is fed to [`std::hint::black_box`] so the loop cannot
    /// be optimised away.
    pub fn prefetch(&self) -> u64 {
        const PAGE: usize = 4096;
        let bytes = self.map.bytes();
        let mut acc = 0u8;
        let mut off = 0;
        while off < bytes.len() {
            acc ^= bytes[off];
            off += PAGE;
        }
        std::hint::black_box(acc);
        bytes.len() as u64
    }

    /// Bytes of this store's memory-mapped segment file.
    pub fn mapped_bytes(&self) -> u64 {
        self.map.len() as u64
    }

    /// This store's heap-resident estimate (the deserialized activity
    /// index; everything else is served straight off the map).
    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        crate::metrics::SEGMENT_RESIDENT_BYTES.sub(self.resident);
    }
}

impl GraphStore for SegmentStore {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    #[inline]
    fn num_interactions(&self) -> usize {
        self.num_events
    }

    #[inline]
    fn pair(&self, p: PairId) -> (NodeId, NodeId) {
        (self.origins()[p as usize], self.targets()[p as usize])
    }

    #[inline]
    fn series(&self, p: PairId) -> SeriesRef<'_> {
        // The one accessor that reads the (potentially cold) event and
        // flow-prefix sections — what the section-read counter tracks.
        // Topology lookups (offsets/targets) are excluded: they touch a
        // few always-hot pages and would only add noise (and a tick per
        // `out_pair_at`, the tightest loop in P1).
        Self::tick_section_read();
        let p = p as usize;
        let es = self.event_start();
        let (a, b) = (es[p] as usize, es[p + 1] as usize);
        let events: &[Event] = &self.typed(S_EVENTS, self.num_events)[a..b];
        // Pair p's prefix run is its event range shifted by the p
        // leading zeros of earlier pairs, plus its own.
        let prefix: &[Flow] =
            &self.typed(S_PREFIX, self.num_events + self.num_pairs)[a + p..b + p + 1];
        SeriesRef::from_raw(events, prefix)
    }

    #[inline]
    fn out_degree(&self, u: NodeId) -> u32 {
        let s = self.out_start();
        s[u as usize + 1] - s[u as usize]
    }

    #[inline]
    fn out_pair_at(&self, u: NodeId, i: u32) -> PairId {
        self.out_start()[u as usize] + i
    }

    #[inline]
    fn out_target_at(&self, u: NodeId, i: u32) -> NodeId {
        self.targets()[(self.out_start()[u as usize] + i) as usize]
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> u32 {
        let s = self.in_start();
        s[v as usize + 1] - s[v as usize]
    }

    #[inline]
    fn in_pair_at(&self, v: NodeId, i: u32) -> PairId {
        self.in_pairs()[(self.in_start()[v as usize] + i) as usize]
    }

    #[inline]
    fn in_source_at(&self, v: NodeId, i: u32) -> NodeId {
        self.in_sources()[(self.in_start()[v as usize] + i) as usize]
    }

    fn pair_id(&self, u: NodeId, v: NodeId) -> Option<PairId> {
        if u as usize >= self.num_nodes {
            return None;
        }
        let s = self.out_start();
        let (a, b) = (s[u as usize] as usize, s[u as usize + 1] as usize);
        let slice = &self.targets()[a..b];
        slice.binary_search(&v).ok().map(|i| (a + i) as PairId)
    }

    #[inline]
    fn origin_active_span(&self, u: NodeId) -> Option<(Timestamp, Timestamp)> {
        let spans = self.origin_spans();
        let (lo, hi) = (*spans.get(2 * u as usize)?, *spans.get(2 * u as usize + 1)?);
        (lo <= hi).then_some((lo, hi))
    }

    fn active_origins_in_range(
        &self,
        w: TimeWindow,
        range: std::ops::Range<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        self.index.origins_overlapping_in_range(w.start, w.end, range.start, range.end, out);
        out.retain(|&u| self.origin_active_in(u, w));
    }

    #[inline]
    fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        (self.num_events > 0).then_some((self.time_lo, self.time_hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("flowmotif-seg-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn fig5() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        for (u, v, t, f) in [
            (0u32, 1u32, 13i64, 5.0),
            (0, 1, 15, 7.0),
            (2, 0, 10, 10.0),
            (3, 2, 1, 2.0),
            (3, 2, 3, 5.0),
            (3, 0, 11, 10.0),
            (1, 2, 18, 20.0),
            (2, 3, 19, 5.0),
            (2, 3, 21, 4.0),
            (1, 3, 23, 7.0),
        ] {
            b.add_interaction(u, v, t, f);
        }
        b.build_time_series_graph()
    }

    fn assert_equivalent(s: &SegmentStore, g: &TimeSeriesGraph) {
        assert_eq!(s.num_nodes(), g.num_nodes());
        assert_eq!(s.num_pairs(), g.num_pairs());
        assert_eq!(s.num_interactions(), g.num_interactions());
        assert_eq!(GraphStore::time_span(s), g.time_span());
        for p in 0..g.num_pairs() as PairId {
            assert_eq!(GraphStore::pair(s, p), g.pair(p));
            assert_eq!(GraphStore::series(s, p).events(), g.series(p).events());
            assert_eq!(
                GraphStore::series(s, p).total_flow().to_bits(),
                g.series(p).total_flow().to_bits(),
                "prefix sums must be bit-identical"
            );
        }
        for u in 0..g.num_nodes() as NodeId {
            assert_eq!(GraphStore::out_degree(s, u) as usize, g.out_degree(u));
            let r = g.out_pair_range(u);
            for i in 0..GraphStore::out_degree(s, u) {
                assert_eq!(GraphStore::out_pair_at(s, u, i), r.start + i);
                assert_eq!(GraphStore::out_target_at(s, u, i), g.out_target_at(u, i));
            }
            assert_eq!(GraphStore::in_degree(s, u), g.in_degree(u));
            for i in 0..GraphStore::in_degree(s, u) {
                assert_eq!(GraphStore::in_pair_at(s, u, i), g.in_pair_at(u, i));
                assert_eq!(GraphStore::in_source_at(s, u, i), g.in_source_at(u, i));
            }
            assert_eq!(GraphStore::origin_active_span(s, u), g.origin_active_span(u));
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(GraphStore::pair_id(s, u, v), g.pair_id(u, v));
            }
        }
        for (a, b) in [(0, 5), (10, 15), (16, 25), (0, 30), (i64::MIN, i64::MAX)] {
            let w = TimeWindow::new(a, b);
            let mut got = Vec::new();
            s.active_origins_in_range(w, 0..NodeId::MAX, &mut got);
            assert_eq!(got, g.active_origins_in(w), "window [{a},{b}]");
        }
    }

    #[test]
    fn write_and_reopen_round_trips_fig5() {
        let dir = tmp_dir("roundtrip");
        write_segment(&fig5(), &dir).unwrap();
        let s = SegmentStore::open(&dir).unwrap();
        assert_equivalent(&s, &fig5());
        assert_eq!(s.prefetch(), s.mapped_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_graph_round_trips() {
        let dir = tmp_dir("empty");
        write_segment(&GraphBuilder::new().build_time_series_graph(), &dir).unwrap();
        let s = SegmentStore::open(&dir).unwrap();
        assert_eq!(s.num_nodes(), 0);
        assert_eq!(s.num_pairs(), 0);
        assert_eq!(GraphStore::time_span(&s), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pack_matches_in_memory_build_across_run_sizes() {
        let dir = tmp_dir("pack");
        let input = dir.join("edges.txt");
        let mut text = String::from("# comment line\n");
        let mut b = GraphBuilder::new();
        // Duplicate timestamps on one pair exercise the stable tie-break.
        for (u, v, t, f) in [
            (3u32, 1u32, 9i64, 2.5),
            (0, 1, 5, 1.0),
            (0, 1, 5, 2.0),
            (1, 2, 7, 4.0),
            (0, 1, 3, 8.0),
            (2, 0, 5, 1.5),
            (0, 1, 5, 0.25),
        ] {
            text.push_str(&format!("{u} {v} {t} {f}\n"));
            b.add_interaction(u, v, t, f);
        }
        std::fs::write(&input, text).unwrap();
        let g = b.build_time_series_graph();
        for run_records in [1, 2, 1024] {
            let out = dir.join(format!("seg{run_records}"));
            let stats = pack_edge_list(&input, &out, run_records).unwrap();
            assert_eq!(stats.interactions, 7);
            assert_eq!(stats.nodes, 4);
            assert_eq!(stats.runs, if run_records >= 7 { 1 } else { 7usize.div_ceil(run_records) });
            let s = SegmentStore::open(&out).unwrap();
            assert_equivalent(&s, &g);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pack_rejects_invalid_input() {
        let dir = tmp_dir("pack-invalid");
        let input = dir.join("edges.txt");
        std::fs::write(&input, "0 1 5 -1.0\n").unwrap();
        assert!(matches!(
            pack_edge_list(&input, &dir.join("o1"), 64),
            Err(GraphError::InvalidFlow { .. })
        ));
        std::fs::write(&input, "4 4 5 1.0\n").unwrap();
        assert!(matches!(
            pack_edge_list(&input, &dir.join("o2"), 64),
            Err(GraphError::SelfLoop(4))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn storage_metrics_track_open_stores() {
        use crate::metrics::{SEGMENT_MAPPED_BYTES, SEGMENT_RESIDENT_BYTES, SEGMENT_SECTION_READS};
        let dir = tmp_dir("metrics");
        write_segment(&fig5(), &dir).unwrap();
        let opens0 = crate::metrics::SEGMENT_OPENS.get();
        let s = SegmentStore::open(&dir).unwrap();
        assert!(crate::metrics::SEGMENT_OPENS.get() > opens0);
        assert!(s.mapped_bytes() > 0);
        assert!(s.resident_bytes() >= std::mem::size_of::<SegmentStore>() as u64);
        // Other tests open and drop stores concurrently, but the gauges
        // always include this live store's contribution.
        assert!(SEGMENT_MAPPED_BYTES.get() >= s.mapped_bytes());
        assert!(SEGMENT_RESIDENT_BYTES.get() >= s.resident_bytes());
        // Reads tick the global through a 1024-batched thread-local, so
        // drive enough accesses to guarantee at least one flush.
        let reads0 = SEGMENT_SECTION_READS.get();
        for _ in 0..2048 {
            let _ = GraphStore::series(&s, 0);
        }
        assert!(SEGMENT_SECTION_READS.get() > reads0);
        drop(s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_corruption() {
        let dir = tmp_dir("corrupt");
        let path = write_segment(&fig5(), &dir).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Flipped header byte -> checksum mismatch.
        let mut bad = pristine.clone();
        bad[9] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let err = SegmentStore::open(&path).unwrap_err().to_string();
        assert!(err.contains("checksum"), "{err}");

        // Bad magic.
        let mut bad = pristine.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = SegmentStore::open(&path).unwrap_err().to_string();
        assert!(err.contains("magic"), "{err}");

        // Flipped byte inside the (header-checksum-exempt) in-pairs
        // section -> the dedicated in-adjacency checksum catches it.
        let mut bad = pristine.clone();
        let in_pairs_off =
            u64::from_le_bytes(bad[8 + (6 + S_IN_PAIRS) * 8..][..8].try_into().unwrap()) as usize;
        bad[in_pairs_off] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let err = SegmentStore::open(&path).unwrap_err().to_string();
        assert!(err.contains("in-adjacency"), "{err}");

        // Truncation (header intact, body cut).
        std::fs::write(&path, &pristine[..pristine.len() - 16]).unwrap();
        let err = SegmentStore::open(&path).unwrap_err().to_string();
        assert!(err.contains("truncated"), "{err}");

        // Too short for a header at all.
        std::fs::write(&path, &pristine[..40]).unwrap();
        let err = SegmentStore::open(&path).unwrap_err().to_string();
        assert!(err.contains("too short"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
