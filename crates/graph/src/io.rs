//! Plain-text edge-list I/O.
//!
//! Format: one interaction per line, `from to time flow`, separated by
//! whitespace or commas. Lines starting with `#` or `%` and blank lines are
//! ignored. This covers the usual distribution format of temporal-network
//! datasets (SNAP, KONECT) with an extra flow column.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::multigraph::TemporalMultigraph;
use crate::tsgraph::TimeSeriesGraph;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

fn parse_line(line: &str, lineno: usize) -> Result<Option<(u32, u32, i64, f64)>, GraphError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(None);
    }
    let mut fields =
        trimmed.split(|c: char| c.is_whitespace() || c == ',').filter(|s| !s.is_empty());
    let mut next = |name: &str| {
        fields.next().ok_or_else(|| GraphError::Parse {
            line: lineno,
            message: format!("missing field `{name}` (expected `from to time flow`)"),
        })
    };
    let from: u64 = next("from")?
        .parse()
        .map_err(|e| GraphError::Parse { line: lineno, message: format!("bad `from`: {e}") })?;
    let to: u64 = next("to")?
        .parse()
        .map_err(|e| GraphError::Parse { line: lineno, message: format!("bad `to`: {e}") })?;
    let time: i64 = next("time")?
        .parse()
        .map_err(|e| GraphError::Parse { line: lineno, message: format!("bad `time`: {e}") })?;
    let flow: f64 = next("flow")?
        .parse()
        .map_err(|e| GraphError::Parse { line: lineno, message: format!("bad `flow`: {e}") })?;
    let from = u32::try_from(from).map_err(|_| GraphError::NodeIdOverflow(from))?;
    let to = u32::try_from(to).map_err(|_| GraphError::NodeIdOverflow(to))?;
    Ok(Some((from, to, time, flow)))
}

/// Streaming iterator over the `(from, to, time, flow)` records of an
/// edge list: one buffered line at a time, never the whole file.
/// Comments and blank lines are skipped; parse failures surface as
/// [`GraphError::Parse`] with the 1-based line number.
///
/// This is the shared front-end of every edge-list consumer — the
/// in-memory builders below and the out-of-core segment packer, which
/// streams records straight into external-sort runs.
pub struct EdgeListRecords<R: Read> {
    reader: BufReader<R>,
    line: String,
    lineno: usize,
}

impl<R: Read> EdgeListRecords<R> {
    /// Wraps a reader in a buffered record iterator.
    pub fn new(reader: R) -> Self {
        Self { reader: BufReader::new(reader), line: String::new(), lineno: 0 }
    }

    /// 1-based number of the last line read (0 before the first line).
    pub fn line_number(&self) -> usize {
        self.lineno
    }
}

impl<R: Read> Iterator for EdgeListRecords<R> {
    type Item = Result<(u32, u32, i64, f64), GraphError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Err(e) => return Some(Err(e.into())),
                Ok(0) => return None,
                Ok(_) => {}
            }
            self.lineno += 1;
            match parse_line(&self.line, self.lineno) {
                Err(e) => return Some(Err(e)),
                Ok(Some(rec)) => return Some(Ok(rec)),
                Ok(None) => continue, // comment or blank line
            }
        }
    }
}

/// Reads an edge list into a [`GraphBuilder`].
pub fn read_edge_list<R: Read>(reader: R) -> Result<GraphBuilder, GraphError> {
    let mut builder = GraphBuilder::new();
    for rec in EdgeListRecords::new(reader) {
        let (u, v, t, f) = rec?;
        builder.try_add_interaction(u, v, t, f)?;
    }
    Ok(builder)
}

/// Opens `path` and wraps any failure — including later read/parse
/// errors surfaced through the returned closure — with the file path.
fn open_with_context(path: &Path) -> Result<std::fs::File, GraphError> {
    std::fs::File::open(path).map_err(|e| GraphError::Io(e).in_file(path))
}

/// Loads a time-series graph from an edge-list file. Errors carry the
/// file path ([`GraphError::InFile`]) around the line-level detail.
pub fn load_time_series_graph<P: AsRef<Path>>(path: P) -> Result<TimeSeriesGraph, GraphError> {
    let path = path.as_ref();
    let file = open_with_context(path)?;
    let builder = read_edge_list(file).map_err(|e| e.in_file(path))?;
    Ok(builder.build_time_series_graph())
}

/// Loads a raw multigraph from an edge-list file. Errors carry the file
/// path ([`GraphError::InFile`]) around the line-level detail.
pub fn load_multigraph<P: AsRef<Path>>(path: P) -> Result<TemporalMultigraph, GraphError> {
    let path = path.as_ref();
    let file = open_with_context(path)?;
    let builder = read_edge_list(file).map_err(|e| e.in_file(path))?;
    Ok(builder.build_multigraph())
}

/// Writes a multigraph as a whitespace-separated edge list with a header
/// comment; round-trips through [`load_multigraph`].
pub fn write_edge_list<W: Write>(g: &TemporalMultigraph, mut w: W) -> Result<(), GraphError> {
    writeln!(w, "# from to time flow")?;
    for i in g.interactions() {
        writeln!(w, "{} {} {} {}", i.from, i.to, i.time, i.flow)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_whitespace_and_commas_and_comments() {
        let input = "# comment\n\n0 1 10 5.0\n1,2,11,2.5\n% another comment\n2\t0\t12\t1\n";
        let b = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(b.num_interactions(), 3);
        let g = b.build_time_series_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_pairs(), 3);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = read_edge_list("0 1 10 5.0\n0 x 11 1.0\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn reports_missing_fields() {
        let err = read_edge_list("0 1 10\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("flow"));
    }

    #[test]
    fn rejects_node_id_overflow() {
        let err = read_edge_list("5000000000 1 10 1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::NodeIdOverflow(_)));
    }

    #[test]
    fn rejects_invalid_flow_values() {
        let err = read_edge_list("0 1 10 -3.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::InvalidFlow { .. }));
    }

    #[test]
    fn record_iterator_streams_and_reports_line_numbers() {
        let input = "# header\n0 1 10 5.0\n\n1 2 11 2.5\nbad line\n";
        let mut it = EdgeListRecords::new(input.as_bytes());
        assert_eq!(it.next().unwrap().unwrap(), (0, 1, 10, 5.0));
        assert_eq!(it.line_number(), 2);
        assert_eq!(it.next().unwrap().unwrap(), (1, 2, 11, 2.5));
        let err = it.next().unwrap().unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 5, .. }), "{err}");
        assert!(it.next().is_none());
    }

    #[test]
    fn file_loaders_attach_the_path_to_errors() {
        let dir = std::env::temp_dir().join("flowmotif_io_ctx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.txt");
        std::fs::write(&path, "0 1 10 5.0\n0 x 11 1.0\n").unwrap();
        let err = load_time_series_graph(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("broken.txt"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        let missing = dir.join("does_not_exist.txt");
        let err = load_multigraph(&missing).unwrap_err();
        assert!(err.to_string().contains("does_not_exist.txt"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_read_round_trip() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 10i64, 5.0), (1, 2, 11, 2.5), (2, 0, 12, 1.0)]);
        let g = b.build_multigraph();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap().build_multigraph();
        assert_eq!(g2.num_interactions(), 3);
        assert_eq!(g2.num_nodes(), 3);
        assert!((g2.total_flow() - g.total_flow()).abs() < 1e-9);
    }
}
