//! Incremental construction of interaction graphs.

use crate::error::GraphError;
use crate::event::{Event, Flow, NodeId, Timestamp};
use crate::multigraph::{Interaction, TemporalMultigraph};
use crate::tsgraph::TimeSeriesGraph;
use flowmotif_util::FxHashMap;

/// Accumulates raw interactions and produces either representation.
///
/// The builder groups interactions per `(u, v)` pair as they arrive, so
/// building the time-series graph is a sort of the (much smaller) pair set
/// rather than of the full edge list.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    num_interactions: usize,
    per_pair: FxHashMap<(NodeId, NodeId), Vec<Event>>,
    allow_self_loops: bool,
}

impl GraphBuilder {
    /// Creates an empty builder (equivalent to `GraphBuilder::default()`).
    /// Self-loops are rejected by [`GraphBuilder::try_add_interaction`]
    /// unless enabled via [`GraphBuilder::allow_self_loops`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Permits `u -> u` interactions (off by default: in the paper's data
    /// model flow transfers connect distinct parties, and motif spanning
    /// paths never map two adjacent motif nodes to the same graph node).
    pub fn allow_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Adds one interaction; panics on invalid input (see
    /// [`GraphBuilder::try_add_interaction`] for the checked variant).
    pub fn add_interaction(&mut self, from: NodeId, to: NodeId, time: Timestamp, flow: Flow) {
        self.try_add_interaction(from, to, time, flow).expect("invalid interaction");
    }

    /// Adds one interaction, validating flow positivity and self-loops.
    pub fn try_add_interaction(
        &mut self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<(), GraphError> {
        if !(flow.is_finite() && flow > 0.0) {
            return Err(GraphError::InvalidFlow { flow, from: from as u64, to: to as u64 });
        }
        if from == to && !self.allow_self_loops {
            return Err(GraphError::SelfLoop(from as u64));
        }
        self.num_nodes = self.num_nodes.max(from.max(to) as usize + 1);
        self.num_interactions += 1;
        self.per_pair.entry((from, to)).or_default().push(Event::new(time, flow));
        Ok(())
    }

    /// Bulk-adds interactions from an iterator of `(from, to, time, flow)`,
    /// pre-reserving pair-table capacity from the iterator's `size_hint`.
    /// The distinct-pair count is at most the interaction count but can be
    /// far smaller (hot pairs), so the reservation is capped — sparse
    /// streams skip the rehash cascade, dense ones don't over-allocate.
    pub fn extend_interactions<I>(&mut self, iter: I)
    where
        I: IntoIterator<Item = (NodeId, NodeId, Timestamp, Flow)>,
    {
        const RESERVE_CAP: usize = 1 << 20;
        let iter = iter.into_iter();
        let (lo, _) = iter.size_hint();
        self.per_pair.reserve(lo.min(RESERVE_CAP));
        for (u, v, t, f) in iter {
            self.add_interaction(u, v, t, f);
        }
    }

    /// Number of interactions added so far.
    pub fn num_interactions(&self) -> usize {
        self.num_interactions
    }

    /// Number of distinct connected pairs so far.
    pub fn num_pairs(&self) -> usize {
        self.per_pair.len()
    }

    /// Finalizes into the merged time-series graph `G_T`.
    pub fn build_time_series_graph(self) -> TimeSeriesGraph {
        TimeSeriesGraph::from_pair_events(self.num_nodes, self.per_pair.into_iter().collect())
    }

    /// Finalizes into the raw multigraph (interaction order is per-pair,
    /// then by arrival).
    pub fn build_multigraph(self) -> TemporalMultigraph {
        let mut g = TemporalMultigraph::with_capacity(self.num_nodes, self.num_interactions);
        for ((u, v), events) in self.per_pair {
            for e in events {
                g.push(Interaction::new(u, v, e.time, e.flow));
            }
        }
        g
    }
}

impl From<&TemporalMultigraph> for TimeSeriesGraph {
    fn from(g: &TemporalMultigraph) -> Self {
        let mut b = GraphBuilder::new().allow_self_loops(true);
        for i in g.interactions() {
            b.add_interaction(i.from, i.to, i.time, i.flow);
        }
        // Preserve isolated trailing nodes.
        let mut ts = b.build_time_series_graph();
        if ts.num_nodes() < g.num_nodes() {
            ts = TimeSeriesGraph::from_pair_events(
                g.num_nodes(),
                ts.pairs()
                    .iter()
                    .zip(ts.all_series())
                    .map(|(&p, s)| (p, s.events().to_vec()))
                    .collect(),
            );
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut b = GraphBuilder::new();
        b.add_interaction(0, 1, 1, 1.0);
        b.add_interaction(0, 1, 2, 1.0);
        b.add_interaction(1, 2, 3, 1.0);
        assert_eq!(b.num_interactions(), 3);
        assert_eq!(b.num_pairs(), 2);
        let g = b.build_time_series_graph();
        assert_eq!(g.num_pairs(), 2);
        assert_eq!(g.num_interactions(), 3);
    }

    #[test]
    fn rejects_nonpositive_flow() {
        let mut b = GraphBuilder::new();
        assert!(b.try_add_interaction(0, 1, 1, 0.0).is_err());
        assert!(b.try_add_interaction(0, 1, 1, -2.0).is_err());
        assert!(b.try_add_interaction(0, 1, 1, f64::NAN).is_err());
        assert!(b.try_add_interaction(0, 1, 1, f64::INFINITY).is_err());
        assert_eq!(b.num_interactions(), 0);
    }

    #[test]
    fn rejects_self_loops_unless_allowed() {
        let mut b = GraphBuilder::new();
        assert!(b.try_add_interaction(5, 5, 1, 1.0).is_err());
        let mut b = GraphBuilder::new().allow_self_loops(true);
        assert!(b.try_add_interaction(5, 5, 1, 1.0).is_ok());
    }

    #[test]
    fn multigraph_round_trip() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0, 1, 5, 2.0), (1, 2, 6, 3.0), (0, 1, 7, 4.0)]);
        let mg = b.build_multigraph();
        assert_eq!(mg.num_interactions(), 3);
        let ts: TimeSeriesGraph = (&mg).into();
        assert_eq!(ts.num_pairs(), 2);
        assert_eq!(ts.series(ts.pair_id(0, 1).unwrap()).len(), 2);
    }

    #[test]
    fn conversion_preserves_isolated_nodes() {
        let mut mg = TemporalMultigraph::with_capacity(50, 1);
        mg.push(Interaction::new(0, 1, 1, 1.0));
        let ts: TimeSeriesGraph = (&mg).into();
        assert_eq!(ts.num_nodes(), 50);
    }
}
