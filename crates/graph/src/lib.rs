//! Temporal interaction-network substrate for flow motif search.
//!
//! This crate implements the two graph representations used by the paper
//! *Flow Motifs in Interaction Networks* (EDBT 2019):
//!
//! * [`TemporalMultigraph`] — the raw input: a directed multigraph whose
//!   edges carry a timestamp and a positive flow value (paper §3, Fig. 2).
//! * [`TimeSeriesGraph`] — the merged representation `G_T(V, E_T)` where all
//!   parallel edges between a node pair collapse into a single edge holding
//!   an [`InteractionSeries`] — the time-ordered `(t, f)` elements of that
//!   pair (paper §4, Fig. 5).
//!
//! The conversion is performed once by [`GraphBuilder`]; all motif-search
//! algorithms operate on the time-series graph.
//!
//! # Quick example
//!
//! ```
//! use flowmotif_graph::GraphBuilder;
//!
//! // The running example of the paper (Fig. 2 / Fig. 5).
//! let mut b = GraphBuilder::new();
//! b.add_interaction(2, 0, 1, 2.0); // u3 -> u1 ... (renumbered)
//! b.add_interaction(0, 1, 13, 5.0);
//! b.add_interaction(0, 1, 15, 7.0);
//! let g = b.build_time_series_graph();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_pairs(), 2);       // |E_T|: connected node pairs
//! assert_eq!(g.num_interactions(), 3); // |E|: multigraph edges
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod active;
pub mod builder;
pub mod error;
pub mod event;
pub mod io;
pub mod metrics;
mod mmap;
pub mod multigraph;
pub mod overlay;
pub mod paths;
pub mod segment;
pub mod series;
pub mod stats;
pub mod store;
pub mod tsgraph;
pub mod window;

pub use active::ActiveOriginIndex;
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use event::{Event, Flow, NodeId, PairId, Timestamp};
pub use multigraph::{Interaction, TemporalMultigraph};
pub use overlay::OverlayStore;
pub use segment::{pack_edge_list, write_segment, PackStats, SegmentStore, SegmentWriter};
pub use series::{InteractionSeries, SeriesRef};
pub use stats::GraphStats;
pub use store::GraphStore;
pub use tsgraph::TimeSeriesGraph;
pub use window::TimeWindow;
