//! Closed time windows `[start, end]` of length `δ` — the sliding windows
//! of Algorithm 1 and the DP module.

use crate::event::Timestamp;

/// A closed time interval `[start, end]`.
///
/// Algorithm 1 slides windows of length `δ` anchored at elements of
/// `R(e1)`; a window anchored at time `t` is `[t, t + δ]` (paper example:
/// anchor 10, δ=10 → window `[10, 20]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Inclusive upper bound.
    pub end: Timestamp,
}

impl TimeWindow {
    /// Creates `[start, end]`. Panics in debug builds if `end < start`.
    #[inline]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        debug_assert!(end >= start, "window end before start");
        Self { start, end }
    }

    /// The window of length `delta` anchored at `t`: `[t, t + delta]`
    /// (saturating on overflow).
    #[inline]
    pub fn anchored(t: Timestamp, delta: Timestamp) -> Self {
        Self::new(t, t.saturating_add(delta))
    }

    /// Window length `end - start` (a span of `δ` means the extreme
    /// timestamps may differ by at most `δ`, matching Def. 3.2).
    #[inline]
    pub fn length(&self) -> Timestamp {
        self.end - self.start
    }

    /// Whether `t` lies inside the closed interval.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether `self` and `other` overlap.
    #[inline]
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

impl std::fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchored_matches_paper_example() {
        // δ=10 anchored at the first element of e1 (t=10) gives [10, 20].
        let w = TimeWindow::anchored(10, 10);
        assert_eq!(w, TimeWindow::new(10, 20));
        assert_eq!(w.length(), 10);
    }

    #[test]
    fn containment_is_closed_on_both_ends() {
        let w = TimeWindow::new(10, 20);
        assert!(w.contains(10));
        assert!(w.contains(20));
        assert!(!w.contains(9));
        assert!(!w.contains(21));
    }

    #[test]
    fn overlap() {
        let a = TimeWindow::new(10, 20);
        assert!(a.overlaps(&TimeWindow::new(20, 30)));
        assert!(a.overlaps(&TimeWindow::new(0, 10)));
        assert!(a.overlaps(&TimeWindow::new(12, 15)));
        assert!(!a.overlaps(&TimeWindow::new(21, 30)));
    }

    #[test]
    fn anchored_saturates_instead_of_overflowing() {
        let w = TimeWindow::anchored(Timestamp::MAX - 1, 10);
        assert_eq!(w.end, Timestamp::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(TimeWindow::new(10, 20).to_string(), "[10, 20]");
    }
}
