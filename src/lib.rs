//! # flowmotif — flow motif search in interaction networks
//!
//! A Rust implementation of *Flow Motifs in Interaction Networks*
//! (Kosyfaki, Mamoulis, Pitoura, Tsaparas — EDBT 2019).
//!
//! Interaction networks (payments, messages, passenger trips) are
//! directed multigraphs whose edges carry a timestamp and a *flow*. A
//! **flow motif** `M = (G_M, δ, ϕ)` describes a small totally-edge-ordered
//! pattern in which every motif edge is instantiated by a *set* of graph
//! edges that together transfer at least `ϕ` flow, all within a `δ`-long
//! time window. This crate finds all maximal instances of such motifs, the
//! top-k instances by flow, and assesses motif significance against a
//! flow-permutation null model.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — temporal multigraph / time-series graph substrate.
//! * [`core`] — motif model, two-phase search, top-k, DP top-1.
//! * [`baseline`] — the join-based competitor algorithm.
//! * [`datasets`] — synthetic Bitcoin/Facebook/Passenger-like workloads,
//!   permutation null model, time-prefix samples.
//! * [`significance`] — z-score / box-plot randomization experiment.
//! * [`stream`] — streaming ingestion and the resident query engine
//!   (incremental appends, sliding-window eviction, window-bounded
//!   queries without rebuilds, epoch-stamped snapshots for concurrent
//!   readers).
//! * [`serve`] — the TCP line-protocol front-end over the snapshot
//!   engine: bounded worker pool, admission control, a tiny client.
//!
//! # Quickstart
//!
//! ```
//! use flowmotif::prelude::*;
//!
//! // Build an interaction network: (from, to, time, flow).
//! let mut b = GraphBuilder::new();
//! b.extend_interactions([
//!     (0u32, 1u32, 10i64, 50.0), // account 0 pays account 1
//!     (1, 2, 40, 30.0),          // account 1 forwards to 2 ...
//!     (1, 2, 55, 25.0),
//!     (2, 0, 90, 60.0),          // ... and 2 closes the cycle
//! ]);
//! let g = b.build_time_series_graph();
//!
//! // Cyclic money movement: >= 25 units per hop within 100 time units.
//! let motif = catalog::by_name("M(3,3)", 100, 25.0).unwrap();
//! let (groups, _stats) = enumerate_all(&g, &motif);
//! let n: usize = groups.iter().map(|(_, v)| v.len()).sum();
//! assert_eq!(n, 1);
//! ```

#![warn(missing_docs)]

pub use flowmotif_baseline as baseline;
pub use flowmotif_core as core;
pub use flowmotif_datasets as datasets;
pub use flowmotif_graph as graph;
pub use flowmotif_serve as serve;
pub use flowmotif_significance as significance;
pub use flowmotif_stream as stream;

/// Convenient glob-import surface covering the common API.
pub mod prelude {
    pub use flowmotif_baseline::{join_enumerate, JoinStats};
    pub use flowmotif_core::{
        analytics::{per_match_activity, per_match_top1, window_top1_series, MatchActivity},
        catalog,
        census::{all_walk_shapes, walk_census, CensusRow},
        count_instances, count_instances_in_window, count_instances_shared,
        count_structural_matches,
        dag::{dag_count, dag_enumerate, DagMotif},
        dp::{dp_max_flow, dp_top1},
        enumerate_all, enumerate_all_in_window, find_structural_matches,
        parallel::{par_count_instances, par_enumerate_all, par_top_k},
        topk::{kth_instance_flow, top_k},
        EdgeSet, ExtensionOrder, Motif, MotifInstance, P1Driver, SearchOptions, SearchStats,
        SpanningPath, StructuralMatch,
    };
    pub use flowmotif_datasets::{
        permute_flows, time_prefix_samples, Dataset, FlowDistribution, GeneratorConfig,
    };
    pub use flowmotif_graph::{
        pack_edge_list, Event, Flow, GraphBuilder, GraphStats, GraphStore, InteractionSeries,
        NodeId, OverlayStore, PackStats, PairId, SegmentStore, TemporalMultigraph, TimeSeriesGraph,
        TimeWindow, Timestamp,
    };
    pub use flowmotif_serve::{Client, Server, ServerConfig};
    pub use flowmotif_significance::{
        assess_motif, assess_motifs, MotifSignificance, SignificanceConfig,
    };
    pub use flowmotif_stream::{
        EngineStats, EpochEngine, EpochSnapshot, IncrementalGraph, QueryEngine, QueryResult,
        SlidingWindow, Snapshot, SnapshotEngine,
    };
}
