//! The `flowmotif` binary: flow motif search on edge-list interaction
//! networks. See `flowmotif --help`.

use flowmotif_cli::{run, Cli};

fn main() {
    let cli = match Cli::parse_from(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("flowmotif") { 0 } else { 2 });
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    if let Err(e) = run(&cli, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
