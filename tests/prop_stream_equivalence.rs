//! Randomized incremental-vs-batch equivalence: any interleaving of
//! streaming appends, evictions, compactions and reads must leave the
//! [`QueryEngine`] answering every (window-restricted) motif query with
//! exactly the instances a fresh batch [`GraphBuilder`] build of the same
//! surviving edge set produces.
//!
//! The simulator tracks the surviving edges next to the engine: appends
//! push, `evict_before(f)` retains `time >= f` — matching the engine's
//! retention contract (late arrivals below a past floor survive until the
//! next eviction, on both sides).

mod common;

use common::{case_rng, pick};
use flowmotif::prelude::*;
use flowmotif_util::rng::{RngExt, StdRng};

const CASES: u64 = 48;
const CATALOG: [&str; 4] = ["M(3,2)", "M(3,3)", "M(4,3)", "M(4,4)B"];

/// Canonical rendering that is independent of pair ids and node-count
/// bookkeeping, so engine output and rebuild output compare structurally.
/// Groups arrive in deterministic P1 order from both sides, but we sort
/// anyway so the oracle only asserts set equality after a canonical sort
/// (the acceptance contract).
fn canonical(g: &TimeSeriesGraph, groups: &[(StructuralMatch, Vec<MotifInstance>)]) -> Vec<String> {
    let mut out: Vec<String> = groups
        .iter()
        .flat_map(|(sm, v)| {
            v.iter().map(move |i| format!("{:?} {}", sm.walk_nodes(g), i.display(g)))
        })
        .collect();
    out.sort();
    out
}

fn batch_build(edges: &[(NodeId, NodeId, Timestamp, Flow)]) -> TimeSeriesGraph {
    let mut b = GraphBuilder::new();
    b.extend_interactions(edges.iter().copied());
    b.build_time_series_graph()
}

fn random_edge(rng: &mut StdRng, nodes: u32) -> (NodeId, NodeId, Timestamp, Flow) {
    let u = rng.random_range(0..nodes);
    let mut v = rng.random_range(0..nodes);
    while v == u {
        v = rng.random_range(0..nodes);
    }
    (u, v, rng.random_range(0i64..120), rng.random_range(1u32..10) as f64)
}

/// One random session: interleaved appends / evictions / compactions /
/// reads, then queries over random windows (and the unbounded window),
/// each checked against a batch rebuild of the surviving edges.
#[test]
fn interleaved_appends_and_evictions_match_batch_rebuild() {
    for case in 0..CASES {
        let mut rng = case_rng(0x57_EA, case);
        let nodes = rng.random_range(4u32..9);
        let ops = rng.random_range(10usize..60);
        let mut engine = QueryEngine::new();
        let mut surviving: Vec<(NodeId, NodeId, Timestamp, Flow)> = Vec::new();
        for _ in 0..ops {
            match rng.random_range(0u32..10) {
                // Evictions and compactions are rare; appends dominate.
                0 => {
                    let floor = rng.random_range(0i64..120);
                    engine.evict_before(floor);
                    surviving.retain(|&(_, _, t, _)| t >= floor);
                }
                1 => engine.compact(),
                2 => {
                    // Mid-stream read: folds buffers, must not disturb state.
                    let _ = engine.graph().num_interactions();
                }
                _ => {
                    let (u, v, t, f) = random_edge(&mut rng, nodes);
                    engine.try_append(u, v, t, f).unwrap();
                    surviving.push((u, v, t, f));
                }
            }
        }
        let reference = batch_build(&surviving);
        assert_eq!(
            engine.graph().num_interactions(),
            reference.num_interactions(),
            "case {case}: retained edge count diverged"
        );
        for q in 0..4 {
            let name = pick(&mut rng, &CATALOG);
            let delta = rng.random_range(1i64..50);
            let phi = rng.random_range(0u32..12) as f64;
            let motif = catalog::by_name(name, delta, phi).unwrap();
            let bounds = if q == 0 {
                None
            } else {
                let a = rng.random_range(0i64..110);
                let b = rng.random_range(a..130);
                Some(TimeWindow::new(a, b))
            };
            let res = engine.query(&motif, bounds);
            let expected_graph = match bounds {
                None => reference.clone(),
                Some(w) => batch_build(
                    &surviving
                        .iter()
                        .copied()
                        .filter(|&(_, _, t, _)| w.contains(t))
                        .collect::<Vec<_>>(),
                ),
            };
            let (expected, _) = enumerate_all(&expected_graph, &motif);
            assert_eq!(
                canonical(engine.graph(), &res.groups),
                canonical(&expected_graph, &expected),
                "case {case} query {q}: {name} δ={delta} ϕ={phi} bounds={bounds:?}"
            );
        }
    }
}

/// The sliding-window policy's retention matches an explicit simulator:
/// after every append, evict exactly when the policy fires.
#[test]
fn sliding_window_policy_matches_manual_eviction() {
    for case in 0..CASES / 2 {
        let mut rng = case_rng(0x57_EB, case);
        let horizon = rng.random_range(5i64..60);
        let slack = rng.random_range(1i64..10);
        let mut engine = QueryEngine::new().with_window(SlidingWindow::with_slack(horizon, slack));
        let mut manual = QueryEngine::new();
        let mut policy = SlidingWindow::with_slack(horizon, slack);
        let mut watermark = i64::MIN;
        for _ in 0..rng.random_range(20usize..80) {
            let (u, v, t, f) = random_edge(&mut rng, 7);
            engine.try_append(u, v, t, f).unwrap();
            manual.try_append(u, v, t, f).unwrap();
            watermark = watermark.max(t);
            if let Some(floor) = policy.advance(watermark) {
                manual.evict_before(floor);
            }
        }
        let motif = catalog::by_name("M(3,2)", 30, 0.0).unwrap();
        let a = engine.query(&motif, None);
        let b = manual.query(&motif, None);
        assert_eq!(
            canonical(engine.graph(), &a.groups),
            canonical(manual.graph(), &b.groups),
            "case {case} horizon={horizon} slack={slack}"
        );
        assert_eq!(engine.stats().interactions, manual.stats().interactions);
    }
}
