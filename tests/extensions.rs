//! Integration tests for the future-work extensions exposed through the
//! facade: shared-prefix search, DAG motifs, analytics and the census.

use flowmotif::prelude::*;

#[test]
fn shared_prefix_agrees_on_every_dataset_and_motif() {
    for d in Dataset::ALL {
        let g = d.generate(0.2, 7);
        for name in ["M(3,2)", "M(3,3)", "M(4,4)B", "M(5,4)"] {
            let m = catalog::by_name(name, d.default_delta(), d.default_phi()).unwrap();
            let (per_match, _) = count_instances(&g, &m);
            let (shared, _) = count_instances_shared(&g, &m);
            assert_eq!(per_match, shared, "{d} {name}");
        }
    }
}

#[test]
fn dag_engine_agrees_with_path_engine_on_generated_data() {
    let g = Dataset::Passenger.generate(0.15, 3);
    for name in ["M(3,2)", "M(3,3)"] {
        let m = catalog::by_name(name, 900, 2.0).unwrap();
        let dag = DagMotif::from_path(m.path(), 900, 2.0).unwrap();
        let (n, _) = count_instances(&g, &m);
        assert_eq!(n, dag_count(&g, &dag), "{name}");
    }
}

#[test]
fn census_totals_are_consistent_with_direct_counts() {
    let g = Dataset::Bitcoin.generate(0.2, 9);
    let rows = walk_census(&g, 2, 600, 5.0);
    assert_eq!(rows.len(), 2); // 0-1-2 and 0-1-0
    for row in &rows {
        let motif = Motif::new(row.shape.clone(), 600, 5.0).unwrap();
        let (direct, _) = count_instances(&g, &motif);
        assert_eq!(direct, row.instances, "{}", row.shape);
        assert_eq!(count_structural_matches(&g, &row.shape), row.structural_matches);
    }
}

#[test]
fn activity_analytics_cover_all_instances() {
    let g = Dataset::Facebook.generate(0.2, 5);
    let m = catalog::by_name("M(3,2)", 600, 3.0).unwrap();
    let acts = per_match_activity(&g, &m);
    let total: u64 = acts.iter().map(|a| a.instances).sum();
    assert_eq!(total, count_instances(&g, &m).0);
    // Sorted by activity.
    for w in acts.windows(2) {
        assert!(w[0].instances >= w[1].instances);
    }
    // Per-match top-1 flows are bounded by the global top-1.
    let tops = per_match_top1(&g, &m);
    let (global, _) = dp_max_flow(&g, &m);
    assert!(tops.iter().all(|(_, f)| *f <= global + 1e-9));
    assert_eq!(tops.first().map(|(_, f)| *f), Some(global));
}

#[test]
fn time_respecting_paths_bound_motif_instances() {
    // If an M(3,2) instance runs u -> v -> w, then w must be
    // time-reachable from u within δ starting at the instance's first
    // time.
    use flowmotif::graph::paths::is_time_reachable;
    let g = Dataset::Passenger.generate(0.15, 13);
    let m = catalog::by_name("M(3,2)", 900, 2.0).unwrap();
    let (groups, _) = enumerate_all(&g, &m);
    for (sm, insts) in groups.iter().take(50) {
        let walk = sm.walk_nodes(&g);
        for inst in insts {
            assert!(
                is_time_reachable(&g, walk[0], walk[2], inst.first_time, inst.last_time),
                "instance implies a time-respecting path"
            );
        }
    }
}
