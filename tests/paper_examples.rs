//! End-to-end integration tests over the facade crate, pinning every
//! worked example in the paper: the Fig. 1 toy, the Fig. 2/4/5/6 bitcoin
//! example, the Fig. 7 / Table 2 Algorithm-1 walkthrough.

use flowmotif::prelude::*;

/// Paper Fig. 1(a): the four-user money-exchange multigraph.
fn fig1_graph() -> TimeSeriesGraph {
    let mut b = GraphBuilder::new();
    // u1=0, u2=1, u3=2, u4=3
    b.extend_interactions([
        (0u32, 1u32, 2i64, 5.0), // u1 -> u2 t=2 f=5
        (1, 2, 5, 2.0),          // u2 -> u3 t=5 f=2
        (1, 2, 3, 4.0),          // u2 -> u3 t=3 f=4
        (3, 0, 1, 6.0),          // u4 -> u1 t=1 f=6
        (1, 3, 4, 3.0),          // u2 -> u4 t=4 f=3
        (2, 0, 10, 1.0),         // u3 -> u1 t=10 f=1
        (3, 2, 2, 4.0),          // u4 -> u3 t=2 f=4
    ]);
    b.build_time_series_graph()
}

/// Paper Fig. 2/5: the bitcoin user example.
fn fig2_graph() -> TimeSeriesGraph {
    let mut b = GraphBuilder::new();
    b.extend_interactions([
        (0u32, 1u32, 13i64, 5.0),
        (0, 1, 15, 7.0),
        (2, 0, 10, 10.0),
        (3, 2, 1, 2.0),
        (3, 2, 3, 5.0),
        (3, 0, 11, 10.0),
        (1, 2, 18, 20.0),
        (2, 3, 19, 5.0),
        (2, 3, 21, 4.0),
        (1, 3, 23, 7.0),
    ]);
    b.build_time_series_graph()
}

#[test]
fn fig1_chain_instances() {
    // Fig. 1(b): the 3-node chain motif with δ=5, ϕ=5. The paper's two
    // instances are u4->u1->u2 (Fig. 1c) and u1->u2->u3 (Fig. 1d).
    let g = fig1_graph();
    let motif = catalog::by_name("M(3,2)", 5, 5.0).unwrap();
    let (groups, _) = enumerate_all(&g, &motif);
    let gr = &g;
    let mut walks: Vec<Vec<u32>> =
        groups.iter().flat_map(|(sm, v)| v.iter().map(move |_| sm.walk_nodes(gr))).collect();
    walks.sort();
    assert_eq!(walks, vec![vec![0, 1, 2], vec![3, 0, 1]]);

    // Fig. 1(d)'s aggregation: the u2->u3 edge-set has flow 2+4 = 6.
    let (sm, insts) = groups.iter().find(|(sm, _)| sm.walk_nodes(&g) == vec![0, 1, 2]).unwrap();
    assert_eq!(insts.len(), 1);
    let inst = &insts[0];
    assert_eq!(inst.edge_sets[1].flow(&g), 6.0);
    assert_eq!(inst.flow, 5.0);
    // Span: 5 - 2 = 3 <= δ.
    assert_eq!(inst.span(), 3);
    let _ = sm;
}

#[test]
fn fig2_stats_shape() {
    let g = fig2_graph();
    let s = GraphStats::of(&g);
    assert_eq!(s.num_nodes, 4);
    assert_eq!(s.num_connected_pairs, 7);
    assert_eq!(s.num_interactions, 10);
}

#[test]
fn fig4_maximal_instance_and_its_nonmaximal_subset() {
    let g = fig2_graph();
    let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
    let (groups, stats) = enumerate_all(&g, &motif);
    assert_eq!(stats.structural_matches, 6, "Fig. 6: six structural matches");
    let all: Vec<&MotifInstance> = groups.iter().flat_map(|(_, v)| v).collect();
    assert_eq!(all.len(), 1);
    let inst = all[0];
    // Fig. 4(a): e1 <- {(10,10)}, e2 <- {(13,5),(15,7)}, e3 <- {(18,20)}.
    assert_eq!(inst.flow, 10.0);
    assert_eq!(inst.edge_sets[1].len(), 2, "both u1->u2 transfers aggregate");
    assert_eq!((inst.first_time, inst.last_time), (10, 18));
}

#[test]
fn fig7_walkthrough_all_algorithms_agree() {
    // The Fig. 7 structural match as a standalone graph.
    let mut b = GraphBuilder::new();
    for (t, f) in [(10, 5.0), (13, 2.0), (15, 3.0), (18, 7.0)] {
        b.add_interaction(0, 1, t, f);
    }
    for (t, f) in [(9, 4.0), (11, 3.0), (16, 3.0)] {
        b.add_interaction(1, 2, t, f);
    }
    for (t, f) in [(14, 4.0), (19, 6.0), (24, 3.0), (25, 2.0)] {
        b.add_interaction(2, 0, t, f);
    }
    let g = b.build_time_series_graph();

    // Table 2: top-1 flow in the match is 5 (δ=10, ϕ=0). All three
    // search variants agree.
    let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
    let (ranked, _) = top_k(&g, &motif, 1);
    assert_eq!(ranked[0].instance.flow, 5.0);
    let (flow, _) = dp_max_flow(&g, &motif);
    assert_eq!(flow, 5.0);
    let (groups, _) = enumerate_all(&g, &motif);
    let max = groups.iter().flat_map(|(_, v)| v.iter().map(|i| i.flow)).fold(0.0f64, f64::max);
    assert_eq!(max, 5.0);

    // ϕ=5 leaves exactly the paper's surviving instance.
    let strict = catalog::by_name("M(3,3)", 10, 5.0).unwrap();
    let (n, _) = count_instances(&g, &strict);
    assert_eq!(n, 1);
    // The join baseline sees the same world.
    let (joined, _) = join_enumerate(&g, &strict);
    assert_eq!(joined.len(), 1);
    assert_eq!(joined[0].1.flow, 5.0);
}

#[test]
fn facade_prelude_is_complete_for_the_readme_flow() {
    // Everything the README quickstart needs is reachable via the prelude.
    let g = Dataset::Passenger.generate(0.05, 1);
    let motif = catalog::by_name("M(3,2)", 900, 2.0).unwrap();
    let (n, _) = count_instances(&g, &motif);
    let (n_par, _) = par_count_instances(&g, &motif, 2);
    assert_eq!(n, n_par);
    let stats = GraphStats::of(&g);
    assert!(stats.num_nodes > 0);
}
