//! Randomized tests for the ranking variants (§5): top-k equals the head
//! of the sorted full enumeration, the DP module equals the maximum
//! enumerated flow, and the k-th flow is monotone in k.
//!
//! Formerly proptest suites; now seeded randomized tests with the same
//! case counts and oracles (the workspace builds offline).

mod common;

use common::{case_rng, pick, random_graph};
use flowmotif::prelude::*;
use flowmotif_util::rng::RngExt;

const CASES: u64 = 64;

fn sorted_flows_desc(g: &TimeSeriesGraph, motif: &Motif) -> Vec<f64> {
    let (groups, _) = enumerate_all(g, motif);
    let mut flows: Vec<f64> = groups.iter().flat_map(|(_, v)| v.iter().map(|i| i.flow)).collect();
    flows.sort_by(|a, b| b.total_cmp(a));
    flows
}

/// top-k flows == the first k flows of the sorted full enumeration.
#[test]
fn top_k_is_head_of_sorted_enumeration() {
    for case in 0..CASES {
        let mut rng = case_rng(0x11, case);
        let g = random_graph(&mut rng, 8, 40);
        let name = pick(&mut rng, &["M(3,2)", "M(3,3)", "M(4,3)"]);
        let delta = rng.random_range(1i64..50);
        let k = rng.random_range(1usize..12);
        let motif = catalog::by_name(name, delta, 0.0).unwrap();
        let all = sorted_flows_desc(&g, &motif);
        let (ranked, _) = top_k(&g, &motif, k);
        let got: Vec<f64> = ranked.iter().map(|r| r.instance.flow).collect();
        let want: Vec<f64> = all.iter().copied().take(k).collect();
        assert_eq!(got, want, "case {case}: {name} δ={delta} k={k}");
    }
}

/// The DP module's max flow equals the best enumerated instance flow,
/// and its witness instance is valid per Def. 3.2.
#[test]
fn dp_equals_enumeration_max() {
    use flowmotif::core::validate::check_instance_valid;
    for case in 0..CASES {
        let mut rng = case_rng(0x12, case);
        let g = random_graph(&mut rng, 8, 40);
        let name = pick(&mut rng, &["M(3,2)", "M(3,3)", "M(4,3)"]);
        let delta = rng.random_range(1i64..50);
        let motif = catalog::by_name(name, delta, 0.0).unwrap();
        let all = sorted_flows_desc(&g, &motif);
        let want = all.first().copied().unwrap_or(0.0);
        let (best, _) = dp_top1(&g, &motif);
        match best {
            None => assert!(all.is_empty(), "case {case}: DP found nothing, enumeration did"),
            Some((sm, inst)) => {
                assert!(
                    (inst.flow - want).abs() < 1e-9,
                    "case {case}: dp={} enumeration={want}",
                    inst.flow
                );
                check_instance_valid(&g, &motif, &sm, &inst)
                    .unwrap_or_else(|e| panic!("case {case}: {e}"));
            }
        }
    }
}

/// kth_instance_flow is non-increasing in k and None past the end.
#[test]
fn kth_flow_is_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng(0x13, case);
        let g = random_graph(&mut rng, 8, 40);
        let delta = rng.random_range(1i64..50);
        let motif = catalog::by_name("M(3,2)", delta, 0.0).unwrap();
        let all = sorted_flows_desc(&g, &motif);
        let mut prev = f64::INFINITY;
        for k in 1..=(all.len() + 2) {
            match kth_instance_flow(&g, &motif, k) {
                Some(f) => {
                    assert!(k <= all.len(), "case {case}: k={k} beyond {}", all.len());
                    assert!(f <= prev, "case {case}: k={k} flow {f} > {prev}");
                    prev = f;
                }
                None => assert!(k > all.len(), "case {case}: missing k={k}"),
            }
        }
    }
}

/// Raising ϕ never increases the instance count; ϕ=0 gives the most.
#[test]
fn phi_monotonicity() {
    for case in 0..CASES {
        let mut rng = case_rng(0x14, case);
        let g = random_graph(&mut rng, 8, 40);
        let name = pick(&mut rng, &["M(3,2)", "M(3,3)"]);
        let delta = rng.random_range(1i64..50);
        let mut prev = u64::MAX;
        for phi in [0.0, 2.0, 5.0, 9.0, 20.0] {
            let motif = catalog::by_name(name, delta, phi).unwrap();
            let (n, _) = count_instances(&g, &motif);
            assert!(n <= prev, "case {case}: phi={phi}: {n} > {prev}");
            prev = n;
        }
    }
}

/// The *top-1 flow* is monotone in δ: a larger window can only admit
/// richer instances.
#[test]
fn top1_flow_monotone_in_delta() {
    for case in 0..CASES {
        let mut rng = case_rng(0x15, case);
        let g = random_graph(&mut rng, 8, 40);
        let name = pick(&mut rng, &["M(3,2)", "M(3,3)"]);
        let mut prev = 0.0f64;
        for delta in [2i64, 5, 10, 25, 60] {
            let motif = catalog::by_name(name, delta, 0.0).unwrap();
            let (flow, _) = dp_max_flow(&g, &motif);
            assert!(flow + 1e-9 >= prev, "case {case}: delta={delta}: {flow} < {prev}");
            prev = flow;
        }
    }
}
