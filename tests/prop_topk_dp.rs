//! Property tests for the ranking variants (§5): top-k equals the head
//! of the sorted full enumeration, the DP module equals the maximum
//! enumerated flow, and the k-th flow is monotone in k.

use flowmotif::prelude::*;
use proptest::prelude::*;

fn graph_strategy(nodes: u32, max_edges: usize) -> impl Strategy<Value = TimeSeriesGraph> {
    prop::collection::vec((0..nodes, 0..nodes, 0i64..120, 1u32..10), 1..max_edges).prop_map(
        |edges| {
            let mut b = GraphBuilder::new();
            for (u, v, t, f) in edges {
                if u != v {
                    b.add_interaction(u, v, t, f as f64);
                }
            }
            b.build_time_series_graph()
        },
    )
}

fn sorted_flows_desc(g: &TimeSeriesGraph, motif: &Motif) -> Vec<f64> {
    let (groups, _) = enumerate_all(g, motif);
    let mut flows: Vec<f64> =
        groups.iter().flat_map(|(_, v)| v.iter().map(|i| i.flow)).collect();
    flows.sort_by(|a, b| b.total_cmp(a));
    flows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// top-k flows == the first k flows of the sorted full enumeration.
    #[test]
    fn top_k_is_head_of_sorted_enumeration(
        g in graph_strategy(8, 40),
        name in prop::sample::select(vec!["M(3,2)", "M(3,3)", "M(4,3)"]),
        delta in 1i64..50,
        k in 1usize..12,
    ) {
        let motif = catalog::by_name(name, delta, 0.0).unwrap();
        let all = sorted_flows_desc(&g, &motif);
        let (ranked, _) = top_k(&g, &motif, k);
        let got: Vec<f64> = ranked.iter().map(|r| r.instance.flow).collect();
        let want: Vec<f64> = all.iter().copied().take(k).collect();
        prop_assert_eq!(got, want);
    }

    /// The DP module's max flow equals the best enumerated instance flow,
    /// and its witness instance is valid per Def. 3.2.
    #[test]
    fn dp_equals_enumeration_max(
        g in graph_strategy(8, 40),
        name in prop::sample::select(vec!["M(3,2)", "M(3,3)", "M(4,3)"]),
        delta in 1i64..50,
    ) {
        use flowmotif::core::validate::check_instance_valid;
        let motif = catalog::by_name(name, delta, 0.0).unwrap();
        let all = sorted_flows_desc(&g, &motif);
        let want = all.first().copied().unwrap_or(0.0);
        let (best, _) = dp_top1(&g, &motif);
        match best {
            None => prop_assert!(all.is_empty()),
            Some((sm, inst)) => {
                prop_assert!((inst.flow - want).abs() < 1e-9,
                    "dp={} enumeration={}", inst.flow, want);
                check_instance_valid(&g, &motif, &sm, &inst)
                    .map_err(TestCaseError::fail)?;
            }
        }
    }

    /// kth_instance_flow is non-increasing in k and None past the end.
    #[test]
    fn kth_flow_is_monotone(
        g in graph_strategy(8, 40),
        delta in 1i64..50,
    ) {
        let motif = catalog::by_name("M(3,2)", delta, 0.0).unwrap();
        let all = sorted_flows_desc(&g, &motif);
        let mut prev = f64::INFINITY;
        for k in 1..=(all.len() + 2) {
            match kth_instance_flow(&g, &motif, k) {
                Some(f) => {
                    prop_assert!(k <= all.len());
                    prop_assert!(f <= prev);
                    prev = f;
                }
                None => prop_assert!(k > all.len()),
            }
        }
    }

    /// Raising ϕ never increases the instance count; ϕ=0 gives the most.
    #[test]
    fn phi_monotonicity(
        g in graph_strategy(8, 40),
        name in prop::sample::select(vec!["M(3,2)", "M(3,3)"]),
        delta in 1i64..50,
    ) {
        let mut prev = u64::MAX;
        for phi in [0.0, 2.0, 5.0, 9.0, 20.0] {
            let motif = catalog::by_name(name, delta, phi).unwrap();
            let (n, _) = count_instances(&g, &motif);
            prop_assert!(n <= prev, "phi={phi}: {n} > {prev}");
            prev = n;
        }
    }

    /// Instances of a larger δ cover those of a smaller δ in count...
    /// not in general (maximality merges instances), but the *top-1 flow*
    /// is monotone in δ: a larger window can only admit richer instances.
    #[test]
    fn top1_flow_monotone_in_delta(
        g in graph_strategy(8, 40),
        name in prop::sample::select(vec!["M(3,2)", "M(3,3)"]),
    ) {
        let mut prev = 0.0f64;
        for delta in [2i64, 5, 10, 25, 60] {
            let motif = catalog::by_name(name, delta, 0.0).unwrap();
            let (flow, _) = dp_max_flow(&g, &motif);
            prop_assert!(flow + 1e-9 >= prev, "delta={delta}: {flow} < {prev}");
            prev = flow;
        }
    }
}
