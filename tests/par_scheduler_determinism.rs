//! Determinism/equivalence suite for the work-stealing parallel
//! scheduler: on a seeded hub-heavy graph, `par_scan` results — the
//! emitted instance set *and* the merged `SearchStats` — are identical
//! across thread counts {1, 2, 8}, block sizes, hub splitting on/off,
//! and (for window-bounded scans) active-index on/off. Every structural
//! match belongs to exactly one task, whatever the scheduling
//! granularity, so partitioning must never change what is found.

mod common;

use flowmotif::core::parallel::{
    par_count_instances_in_window, par_enumerate_all_with, par_enumerate_window, par_top_k_with,
    scheduler_makespan, ParOptions,
};
use flowmotif::prelude::*;
use flowmotif_graph::{GraphBuilder, TimeSeriesGraph, TimeWindow};
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};

/// One heavy hub (out-degree `hub_deg`, far above every tested
/// `hub_degree` threshold) whose targets fan out again, plus a light
/// random background — the skew that breaks block-only scheduling.
fn hub_heavy_graph(hub_deg: u32, light_edges: usize, seed: u64) -> TimeSeriesGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for i in 0..hub_deg {
        let v = 1 + i;
        b.add_interaction(0, v, rng.random_range(0..400), rng.random_range(1..10) as f64);
        for _ in 0..2 {
            let w = 1 + hub_deg + rng.random_range(0..20u32);
            b.add_interaction(v, w, rng.random_range(0..400), rng.random_range(1..10) as f64);
        }
    }
    let base = 1 + hub_deg + 20;
    for _ in 0..light_edges {
        let u = base + rng.random_range(0..40u32);
        let mut v = base + rng.random_range(0..40u32);
        while v == u {
            v = base + rng.random_range(0..40u32);
        }
        b.add_interaction(u, v, rng.random_range(0..400), rng.random_range(1..10) as f64);
    }
    b.build_time_series_graph()
}

fn canonical(groups: &[(StructuralMatch, Vec<MotifInstance>)]) -> Vec<String> {
    let mut out: Vec<String> = groups
        .iter()
        .flat_map(|(sm, v)| v.iter().map(move |i| format!("{:?}|{:?}", sm.pairs, i.edge_sets)))
        .collect();
    out.sort();
    out
}

/// The scheduling configurations under test: block sizes spanning
/// "every origin its own task" to "one big run", with hub splitting both
/// forced (threshold 4 splits the hub *and* some background nodes) and
/// disabled (`u32::MAX` = the legacy fixed-block scheduler).
fn scheduler_grid(threads: usize) -> Vec<ParOptions> {
    let mut grid = Vec::new();
    for block in [1u32, 7, 64] {
        for (hub_degree, hub_chunk) in [(4u32, 3u32), (4, 64), (u32::MAX, 16)] {
            grid.push(ParOptions { threads, block, hub_degree, hub_chunk });
        }
    }
    grid
}

#[test]
fn unbounded_scan_is_identical_across_schedules() {
    let g = hub_heavy_graph(60, 120, 0xD5);
    for name in ["M(3,2)", "M(3,3)"] {
        let motif = catalog::by_name(name, 50, 2.0).unwrap();
        let (seq_groups, seq_stats) = enumerate_all(&g, &motif);
        let want = canonical(&seq_groups);
        for threads in [1usize, 2, 8] {
            for par in scheduler_grid(threads) {
                let (groups, stats) =
                    par_enumerate_all_with(&g, &motif, SearchOptions::default(), par);
                assert_eq!(canonical(&groups), want, "{name} {par:?}");
                assert_eq!(stats, seq_stats, "{name} {par:?}");
            }
        }
    }
}

#[test]
fn bounded_scan_is_identical_across_schedules_indexed_and_unindexed() {
    let g = hub_heavy_graph(60, 120, 0xD6);
    let motif = catalog::by_name("M(3,2)", 50, 0.0).unwrap();
    for (a, b) in [(0i64, 120i64), (100, 250), (390, 400)] {
        let w = TimeWindow::new(a, b);
        for use_index in [true, false] {
            let opts = SearchOptions::default().with_use_active_index(use_index);
            let mut seq_sink = flowmotif::core::CollectSink::default();
            let seq_stats =
                flowmotif::core::enumerate_window_with_sink(&g, &motif, w, opts, &mut seq_sink);
            let want = canonical(&seq_sink.groups);
            for threads in [1usize, 2, 8] {
                for par in scheduler_grid(threads) {
                    let (groups, stats) = par_enumerate_window(&g, &motif, w, opts, par);
                    assert_eq!(
                        canonical(&groups),
                        want,
                        "window [{a},{b}] index={use_index} {par:?}"
                    );
                    assert_eq!(stats, seq_stats, "window [{a},{b}] index={use_index} {par:?}");
                    let (n, count_stats) = par_count_instances_in_window(&g, &motif, w, opts, par);
                    assert_eq!(n as usize, want.len());
                    assert_eq!(count_stats, seq_stats);
                }
            }
        }
    }
}

#[test]
fn top_k_flows_are_identical_across_schedules() {
    let g = hub_heavy_graph(60, 120, 0xD7);
    let motif = catalog::by_name("M(3,2)", 50, 0.0).unwrap();
    for k in [1usize, 5, 25] {
        let (seq, _) = top_k(&g, &motif, k);
        let want: Vec<f64> = seq.iter().map(|r| r.instance.flow).collect();
        for threads in [1usize, 2, 8] {
            for par in scheduler_grid(threads) {
                let (ranked, _) = par_top_k_with(&g, &motif, k, SearchOptions::default(), par);
                let got: Vec<f64> = ranked.iter().map(|r| r.instance.flow).collect();
                assert_eq!(got, want, "k={k} {par:?}");
            }
        }
    }
}

#[test]
fn hub_splitting_balances_the_modelled_schedule() {
    let g = hub_heavy_graph(200, 60, 0xD8);
    let motif = catalog::by_name("M(3,2)", 50, 0.0).unwrap();
    let legacy = scheduler_makespan(
        &g,
        &motif,
        ParOptions { threads: 8, hub_degree: u32::MAX, ..ParOptions::default() },
    );
    let steal = scheduler_makespan(&g, &motif, ParOptions { threads: 8, ..ParOptions::default() });
    assert_eq!(legacy.total, steal.total, "both schedules cover the same match set");
    assert!(steal.tasks > legacy.tasks, "splitting must create sub-tasks for the hub");
    assert!(
        steal.max_task * 4 <= legacy.max_task,
        "hub chunks must be far lighter than the hub's whole block \
         (legacy max {}, splitting max {})",
        legacy.max_task,
        steal.max_task
    );
    assert!(
        steal.makespan * 2 <= legacy.makespan,
        "the modelled 8-worker makespan must improve at least 2x \
         (legacy {}, splitting {})",
        legacy.makespan,
        steal.makespan
    );
}

#[test]
fn random_background_graphs_agree_too() {
    // Not hub-heavy: the scheduler must also be exact on ordinary graphs
    // (regression net for block-boundary bugs).
    for case in 0..8u64 {
        let mut rng = common::case_rng(0x5C, case);
        let g = common::random_graph(&mut rng, 30, 150);
        let motif = catalog::by_name("M(3,2)", 60, 0.0).unwrap();
        let (seq, _) = count_instances(&g, &motif);
        for par in scheduler_grid(3) {
            let (n, _) = flowmotif::core::parallel::par_count_instances_with(
                &g,
                &motif,
                SearchOptions::default(),
                par,
            );
            assert_eq!(n, seq, "case {case} {par:?}");
        }
    }
}
