//! Randomized equivalence suite for the worst-case-optimal P1 port
//! (pinned by `core/src/gallop.rs`):
//!
//! * galloping intersection ≡ linear merge intersection on adversarial
//!   sorted slices (duplicates, runs, extreme size skew);
//! * `gallop_seek` ≡ a linear scan for "first index ≥ v from a cursor";
//! * fixed-order and cardinality-ordered extension emit the
//!   bit-identical structural match stream, instance set and
//!   [`SearchStats`] on arbitrary graphs, motifs (including cycles,
//!   where constraint fan-in actually engages the WCO path), windows
//!   and index settings.

mod common;

use common::{case_rng, pick, random_graph};
use flowmotif::core::enumerate::{enumerate_window_with_sink, CollectSink};
use flowmotif::core::gallop::{gallop_intersect_into, gallop_seek, merge_intersect_into};
use flowmotif::prelude::*;
use flowmotif_util::rng::{RngExt, StdRng};

const CASES: u64 = 64;
/// Cyclic motifs dominate: a fresh node with a single constraint never
/// enters `wco_extend`, so chains alone would leave the galloping path
/// untested.
const CATALOG: [&str; 6] = ["M(3,2)", "M(3,3)", "M(4,4)A", "M(4,4)B", "M(4,4)C", "M(5,5)A"];

/// Ascending slice with duplicates; `spread` controls density so some
/// draws produce long runs and near-disjoint ranges.
fn sorted_slice(rng: &mut StdRng, len: usize, spread: u32) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len).map(|_| rng.random_range(0..spread.max(1))).collect();
    v.sort_unstable();
    v
}

#[test]
fn gallop_equals_merge_on_adversarial_slices() {
    let (mut got, mut want) = (Vec::new(), Vec::new());
    // Hand-picked adversarial shapes first: empties, identical slices,
    // disjoint ranges, all-equal values, one-sided long runs.
    let fixed: [(&[u32], &[u32]); 7] = [
        (&[], &[]),
        (&[], &[1, 2, 3]),
        (&[5], &[1, 2, 3, 4, 5, 6]),
        (&[1, 1, 1, 1], &[1, 1]),
        (&[1, 2, 3], &[4, 5, 6]),
        (&[0, 2, 4, 6, 8], &[1, 3, 5, 7, 9]),
        (&[7, 7, 7, 8, 9, 9, 9, 9], &[6, 7, 9, 9]),
    ];
    for (a, b) in fixed {
        gallop_intersect_into(a, b, &mut got);
        merge_intersect_into(a, b, &mut want);
        assert_eq!(got, want, "a={a:?} b={b:?}");
    }
    for case in 0..CASES {
        let mut rng = case_rng(0x9C0, case);
        // Extreme size skew half the time: galloping earns its keep when
        // one side dwarfs the other, and its cursor arithmetic is most
        // fragile there.
        let (la, lb) = if case % 2 == 0 {
            (rng.random_range(0..8usize), rng.random_range(100..2000usize))
        } else {
            (rng.random_range(0..60usize), rng.random_range(0..60usize))
        };
        let spread = *pick(&mut rng, &[4u32, 50, 5000]);
        let a = sorted_slice(&mut rng, la, spread);
        let b = sorted_slice(&mut rng, lb, spread);
        gallop_intersect_into(&a, &b, &mut got);
        merge_intersect_into(&a, &b, &mut want);
        assert_eq!(got, want, "case {case}: |a|={la} |b|={lb} spread={spread}");
        // Symmetry: set intersection must not care which side gallops.
        gallop_intersect_into(&b, &a, &mut got);
        assert_eq!(got, want, "case {case} (swapped)");
    }
}

#[test]
fn gallop_seek_equals_linear_scan() {
    for case in 0..CASES {
        let mut rng = case_rng(0x9C1, case);
        let spread = *pick(&mut rng, &[3u32, 40, 10_000]);
        let len = rng.random_range(0..300usize);
        let xs = sorted_slice(&mut rng, len, spread);
        for _ in 0..50 {
            let from = rng.random_range(0..xs.len() + 1);
            let v = rng.random_range(0..spread + 2);
            let got = gallop_seek(&xs, from, v);
            let want = (from..xs.len()).find(|&i| xs[i] >= v).unwrap_or(xs.len());
            assert_eq!(got, want, "case {case}: xs.len()={} from={from} v={v}", xs.len());
        }
    }
}

/// Fixed and cardinality orders must emit the bit-identical structural
/// match *stream* — same matches in the same sequence — for every
/// origin-set flavour and index setting.
#[test]
fn extension_orders_emit_identical_match_streams() {
    for case in 0..CASES {
        let mut rng = case_rng(0x9C2, case);
        let g = random_graph(&mut rng, 8, 40);
        let name = pick(&mut rng, &CATALOG);
        let motif = catalog::by_name(name, 10, 0.0).unwrap();
        let bounds = TimeWindow::new(0, rng.random_range(1i64..120));
        for use_index in [false, true] {
            let driver = |order| {
                P1Driver::new(motif.path())
                    .bounds(bounds)
                    .use_index(use_index)
                    .extension_order(order)
            };
            assert_eq!(
                driver(ExtensionOrder::Fixed).collect(&g),
                driver(ExtensionOrder::Cardinality).collect(&g),
                "case {case}: {name} bounds={bounds:?} index={use_index}"
            );
        }
    }
}

/// End to end: the full two-phase search returns the identical instance
/// groups *and* identical [`SearchStats`] under either order — WCO may
/// only change how P1 explores, never what either phase reports.
#[test]
fn extension_orders_agree_on_instances_and_stats() {
    for case in 0..CASES {
        let mut rng = case_rng(0x9C3, case);
        let g = random_graph(&mut rng, 8, 40);
        let name = pick(&mut rng, &CATALOG);
        let delta = rng.random_range(1i64..50);
        let phi = rng.random_range(0u32..12) as f64;
        let motif = catalog::by_name(name, delta, phi).unwrap();
        let bounded = rng.random_range(0u32..2) == 0;
        let w = if bounded {
            let a = rng.random_range(0i64..100);
            TimeWindow::new(a, a + rng.random_range(1i64..60))
        } else {
            TimeWindow::new(i64::MIN, i64::MAX)
        };
        let run = |order| {
            let opts = SearchOptions::default().with_extension_order(order);
            let mut sink = CollectSink::default();
            let stats = enumerate_window_with_sink(&g, &motif, w, opts, &mut sink);
            (sink.groups, stats)
        };
        let (fixed_groups, fixed_stats) = run(ExtensionOrder::Fixed);
        let (wco_groups, wco_stats) = run(ExtensionOrder::Cardinality);
        assert_eq!(
            fixed_groups, wco_groups,
            "case {case}: {name} δ={delta} ϕ={phi} w={w:?} instance groups diverged"
        );
        assert_eq!(
            fixed_stats, wco_stats,
            "case {case}: {name} δ={delta} ϕ={phi} w={w:?} stats diverged"
        );
    }
}
