//! Three-way equivalence of the active-time origin index: across any
//! interleaving of streaming appends, evictions and compactions, every
//! window-restricted motif query must answer identically whether it is
//! (a) index-assisted (the default), (b) unindexed (the pre-index origin
//! sweep, `use_active_index: false`), or (c) a batch `GraphBuilder`
//! rebuild of the surviving in-window edges — the oracle.
//!
//! A second suite pins the eviction contract of the metadata itself: an
//! origin whose out-events are all evicted must never be resurrected by
//! the index, and the index's bucket footprint must shrink as whole
//! buckets fall below the floor.

mod common;

use common::{case_rng, pick};
use flowmotif::prelude::*;
use flowmotif_util::rng::{RngExt, StdRng};

const CASES: u64 = 40;
const CATALOG: [&str; 4] = ["M(3,2)", "M(3,3)", "M(4,3)", "M(4,4)B"];

fn canonical(g: &TimeSeriesGraph, groups: &[(StructuralMatch, Vec<MotifInstance>)]) -> Vec<String> {
    let mut out: Vec<String> = groups
        .iter()
        .flat_map(|(sm, v)| {
            v.iter().map(move |i| format!("{:?} {}", sm.walk_nodes(g), i.display(g)))
        })
        .collect();
    out.sort();
    out
}

fn batch_build(edges: &[(NodeId, NodeId, Timestamp, Flow)]) -> TimeSeriesGraph {
    let mut b = GraphBuilder::new();
    b.extend_interactions(edges.iter().copied());
    b.build_time_series_graph()
}

fn random_edge(rng: &mut StdRng, nodes: u32) -> (NodeId, NodeId, Timestamp, Flow) {
    let u = rng.random_range(0..nodes);
    let mut v = rng.random_range(0..nodes);
    while v == u {
        v = rng.random_range(0..nodes);
    }
    (u, v, rng.random_range(0i64..200), rng.random_range(1u32..10) as f64)
}

#[test]
fn indexed_unindexed_and_batch_rebuild_agree() {
    let unindexed_opts = SearchOptions::default().with_use_active_index(false);
    for case in 0..CASES {
        let mut rng = case_rng(0x1D_EC5, case);
        let nodes = rng.random_range(4u32..10);
        let ops = rng.random_range(15usize..70);
        // Two engines fed identically; only the query-time option differs.
        let mut indexed = QueryEngine::new();
        let mut unindexed = QueryEngine::new().search_options(unindexed_opts);
        let mut surviving: Vec<(NodeId, NodeId, Timestamp, Flow)> = Vec::new();
        for _ in 0..ops {
            match rng.random_range(0u32..12) {
                0 => {
                    let floor = rng.random_range(0i64..200);
                    indexed.evict_before(floor);
                    unindexed.evict_before(floor);
                    surviving.retain(|&(_, _, t, _)| t >= floor);
                }
                1 => {
                    indexed.compact();
                    unindexed.compact();
                }
                _ => {
                    let (u, v, t, f) = random_edge(&mut rng, nodes);
                    indexed.try_append(u, v, t, f).unwrap();
                    unindexed.try_append(u, v, t, f).unwrap();
                    surviving.push((u, v, t, f));
                }
            }
        }
        for q in 0..5 {
            let name = pick(&mut rng, &CATALOG);
            let delta = rng.random_range(1i64..60);
            let phi = rng.random_range(0u32..10) as f64;
            let motif = catalog::by_name(name, delta, phi).unwrap();
            let bounds = if q == 0 {
                None
            } else {
                let a = rng.random_range(0i64..190);
                let b = rng.random_range(a..210);
                Some(TimeWindow::new(a, b))
            };
            let with_index = indexed.query(&motif, bounds);
            let without = unindexed.query(&motif, bounds);
            // (a) == (b), including emission order and search counters of
            // the instance phase (the structural-match streams coincide).
            assert_eq!(
                canonical(indexed.graph(), &with_index.groups),
                canonical(unindexed.graph(), &without.groups),
                "case {case} query {q}: indexed vs unindexed, {name} δ={delta} ϕ={phi} \
                 bounds={bounds:?}"
            );
            assert_eq!(
                with_index.stats, without.stats,
                "case {case} query {q}: search counters diverged"
            );
            // (a) == (c): the batch-rebuild oracle over the surviving
            // in-window edges.
            let oracle_graph = match bounds {
                None => batch_build(&surviving),
                Some(w) => batch_build(
                    &surviving
                        .iter()
                        .copied()
                        .filter(|&(_, _, t, _)| w.contains(t))
                        .collect::<Vec<_>>(),
                ),
            };
            let (oracle, _) = enumerate_all(&oracle_graph, &motif);
            assert_eq!(
                canonical(indexed.graph(), &with_index.groups),
                canonical(&oracle_graph, &oracle),
                "case {case} query {q}: indexed vs batch rebuild, {name} δ={delta} ϕ={phi} \
                 bounds={bounds:?}"
            );
        }
    }
}

#[test]
fn eviction_shrinks_active_metadata_without_resurrecting_origins() {
    for case in 0..CASES / 2 {
        let mut rng = case_rng(0x1D_EC6, case);
        let nodes = rng.random_range(6u32..14);
        let mut b = GraphBuilder::new();
        let mut edges = Vec::new();
        for _ in 0..rng.random_range(40usize..120) {
            let (u, v, t, f) = {
                let u = rng.random_range(0..nodes);
                let mut v = rng.random_range(0..nodes);
                while v == u {
                    v = rng.random_range(0..nodes);
                }
                (u, v, rng.random_range(0i64..2000), rng.random_range(1u32..5) as f64)
            };
            b.add_interaction(u, v, t, f);
            edges.push((u, v, t, f));
        }
        let mut g = b.build_time_series_graph();
        let buckets_before = g.active_index_buckets();
        let floor = rng.random_range(500i64..1800);
        g.evict_before(floor);
        edges.retain(|&(_, _, t, _)| t >= floor);

        // Spans shrank to exactly the surviving events per origin.
        for u in 0..nodes {
            let survivors: Vec<i64> =
                edges.iter().filter(|&&(s, _, _, _)| s == u).map(|&(_, _, t, _)| t).collect();
            let expect = survivors
                .iter()
                .copied()
                .min()
                .map(|lo| (lo, survivors.iter().copied().max().unwrap()));
            assert_eq!(
                g.origin_active_span(u),
                expect,
                "case {case} origin {u} floor {floor}: span must match the survivors"
            );
        }
        // No stale origin is resurrected by any window query, including
        // windows entirely below the floor.
        for (a, z) in [(0, floor - 1), (0, 2000), (floor, 2000)] {
            if z < a {
                continue;
            }
            let w = TimeWindow::new(a, z);
            for u in g.active_origins_in(w) {
                assert!(
                    g.origin_active_span(u).is_some(),
                    "case {case}: evicted-empty origin {u} resurrected for {w}"
                );
                assert!(
                    g.origin_active_in(u, w),
                    "case {case}: origin {u} outside its span for {w}"
                );
            }
        }
        // And origins that truly have in-window activity are all found.
        let w = TimeWindow::new(floor, 2000);
        let found = g.active_origins_in(w);
        for &(u, _, _, _) in &edges {
            assert!(found.contains(&u), "case {case}: surviving origin {u} missing for {w}");
        }
        // The bucket footprint shrank (whole buckets fell below the
        // floor) unless the eviction removed nothing.
        if !edges.is_empty() && g.num_interactions() > 0 && floor > 600 {
            assert!(
                g.active_index_buckets() <= buckets_before,
                "case {case}: bucket count grew across an eviction"
            );
        }
    }
}
