//! Shared helpers for the seeded randomized integration suites.
//!
//! The original property tests used `proptest`; the workspace now builds
//! fully offline, so the suites draw their random cases from the in-repo
//! deterministic RNG instead. Each test runs a fixed number of cases and
//! derives one RNG per case, so failures are reproducible from the
//! printed case number alone.

// Each integration-test binary compiles this module separately and not
// all of them use every helper.
#![allow(dead_code)]

use flowmotif::prelude::*;
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};

/// RNG for case `case` of the suite identified by `suite` (a per-test
/// constant). Golden-ratio mixing keeps suites' streams disjoint.
pub fn case_rng(suite: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(suite.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(case))
}

/// Random small interaction network mirroring the old proptest strategy:
/// up to `max_edges` interactions among `nodes` vertices with integer
/// times in `0..120` and flows in `1..10`; self-loop draws are dropped.
pub fn random_graph(rng: &mut StdRng, nodes: u32, max_edges: usize) -> TimeSeriesGraph {
    let edges = rng.random_range(1..max_edges.max(2));
    let mut b = GraphBuilder::new();
    for _ in 0..edges {
        let u = rng.random_range(0..nodes);
        let v = rng.random_range(0..nodes);
        if u != v {
            b.add_interaction(u, v, rng.random_range(0i64..120), rng.random_range(1u32..10) as f64);
        }
    }
    b.build_time_series_graph()
}

/// Uniformly picks one element of `items`.
pub fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}
