//! Property tests: on arbitrary small interaction networks, the
//! two-phase algorithm, the join baseline and the brute-force reference
//! agree exactly, and every emitted instance is valid (Def. 3.2) and
//! maximal (Def. 3.3).

use flowmotif::core::validate::{
    brute_force_instances, check_instance_maximal, check_instance_valid,
    check_structural_match,
};
use flowmotif::prelude::*;
use proptest::prelude::*;

/// Random small interaction network: up to `nodes` vertices, `edges`
/// interactions with integer times and flows.
fn graph_strategy(
    nodes: u32,
    max_edges: usize,
) -> impl Strategy<Value = TimeSeriesGraph> {
    prop::collection::vec(
        (0..nodes, 0..nodes, 0i64..120, 1u32..10),
        1..max_edges,
    )
    .prop_map(|edges| {
        let mut b = GraphBuilder::new();
        for (u, v, t, f) in edges {
            if u != v {
                b.add_interaction(u, v, t, f as f64);
            }
        }
        b.build_time_series_graph()
    })
}

fn catalog_motif() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["M(3,2)", "M(3,3)", "M(4,3)", "M(4,4)B"])
}

fn normalize(v: Vec<(StructuralMatch, MotifInstance)>) -> Vec<String> {
    let mut out: Vec<String> =
        v.iter().map(|(sm, i)| format!("{:?}|{:?}", sm.pairs, i.edge_sets)).collect();
    out.sort();
    out
}

fn flatten(groups: Vec<(StructuralMatch, Vec<MotifInstance>)>) -> Vec<(StructuralMatch, MotifInstance)> {
    groups
        .into_iter()
        .flat_map(|(sm, is)| is.into_iter().map(move |i| (sm.clone(), i)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two-phase output == join-baseline output, element for element.
    #[test]
    fn two_phase_equals_join(
        g in graph_strategy(8, 40),
        name in catalog_motif(),
        delta in 1i64..50,
        phi in 0u32..12,
    ) {
        let motif = catalog::by_name(name, delta, phi as f64).unwrap();
        let (two_phase, _) = enumerate_all(&g, &motif);
        let (joined, _) = join_enumerate(&g, &motif);
        prop_assert_eq!(normalize(flatten(two_phase)), normalize(joined));
    }

    /// Every emitted instance is structurally sound, valid and maximal.
    #[test]
    fn instances_are_valid_and_maximal(
        g in graph_strategy(8, 40),
        name in catalog_motif(),
        delta in 1i64..50,
        phi in 0u32..12,
    ) {
        let motif = catalog::by_name(name, delta, phi as f64).unwrap();
        let (groups, _) = enumerate_all(&g, &motif);
        for (sm, insts) in &groups {
            check_structural_match(&g, &motif, sm).map_err(TestCaseError::fail)?;
            for inst in insts {
                check_instance_valid(&g, &motif, sm, inst).map_err(TestCaseError::fail)?;
                check_instance_maximal(&g, &motif, inst).map_err(TestCaseError::fail)?;
            }
        }
    }

    /// Per structural match, the algorithm agrees with the exponential
    /// brute-force reference (smaller graphs: the reference explodes).
    #[test]
    fn two_phase_equals_brute_force(
        g in graph_strategy(6, 24),
        name in prop::sample::select(vec!["M(3,2)", "M(3,3)"]),
        delta in 1i64..40,
        phi in 0u32..8,
    ) {
        let motif = catalog::by_name(name, delta, phi as f64).unwrap();
        let matches = find_structural_matches(&g, motif.path());
        let (groups, _) = enumerate_all(&g, &motif);
        for sm in &matches {
            let algo: Vec<_> = groups
                .iter()
                .filter(|(m, _)| m == sm)
                .flat_map(|(_, v)| v.iter().map(|i| format!("{:?}", i.edge_sets)))
                .collect();
            let brute: Vec<_> = brute_force_instances(&g, &motif, sm)
                .iter()
                .map(|i| format!("{:?}", i.edge_sets))
                .collect();
            let mut a = algo; a.sort();
            let mut b = brute; b.sort();
            prop_assert_eq!(a, b);
        }
    }

    /// The ablation toggles change work done but never the result set.
    #[test]
    fn search_options_do_not_change_results(
        g in graph_strategy(8, 40),
        name in catalog_motif(),
        delta in 1i64..50,
        phi in 0u32..12,
    ) {
        use flowmotif::core::enumerate::{enumerate_with_sink, CollectSink};
        let motif = catalog::by_name(name, delta, phi as f64).unwrap();
        let mut reference: Option<Vec<String>> = None;
        for skip in [true, false] {
            for prune in [true, false] {
                let opts = SearchOptions {
                    skip_redundant_windows: skip,
                    phi_prefix_pruning: prune,
                };
                let mut sink = CollectSink::default();
                enumerate_with_sink(&g, &motif, opts, &mut sink);
                let norm = normalize(flatten(sink.groups));
                match &reference {
                    None => reference = Some(norm),
                    Some(r) => prop_assert_eq!(&norm, r, "skip={} prune={}", skip, prune),
                }
            }
        }
    }

    /// Parallel drivers agree with the sequential ones.
    #[test]
    fn parallel_equals_sequential(
        g in graph_strategy(10, 50),
        name in catalog_motif(),
        delta in 1i64..50,
        phi in 0u32..10,
        threads in 1usize..5,
    ) {
        let motif = catalog::by_name(name, delta, phi as f64).unwrap();
        let (seq, _) = count_instances(&g, &motif);
        let (par, _) = par_count_instances(&g, &motif, threads);
        prop_assert_eq!(seq, par);
    }
}
