//! Randomized equivalence tests: on arbitrary small interaction networks,
//! the two-phase algorithm, the join baseline and the brute-force
//! reference agree exactly, and every emitted instance is valid
//! (Def. 3.2) and maximal (Def. 3.3).
//!
//! Formerly proptest suites; now seeded randomized tests with the same
//! case counts and oracles (the workspace builds offline).

mod common;

use common::{case_rng, pick, random_graph};
use flowmotif::core::validate::{
    brute_force_instances, check_instance_maximal, check_instance_valid, check_structural_match,
};
use flowmotif::prelude::*;
use flowmotif_util::rng::RngExt;

const CASES: u64 = 64;
const CATALOG: [&str; 4] = ["M(3,2)", "M(3,3)", "M(4,3)", "M(4,4)B"];

fn normalize(v: Vec<(StructuralMatch, MotifInstance)>) -> Vec<String> {
    let mut out: Vec<String> =
        v.iter().map(|(sm, i)| format!("{:?}|{:?}", sm.pairs, i.edge_sets)).collect();
    out.sort();
    out
}

fn flatten(
    groups: Vec<(StructuralMatch, Vec<MotifInstance>)>,
) -> Vec<(StructuralMatch, MotifInstance)> {
    groups.into_iter().flat_map(|(sm, is)| is.into_iter().map(move |i| (sm.clone(), i))).collect()
}

/// Two-phase output == join-baseline output, element for element.
#[test]
fn two_phase_equals_join() {
    for case in 0..CASES {
        let mut rng = case_rng(0x01, case);
        let g = random_graph(&mut rng, 8, 40);
        let name = pick(&mut rng, &CATALOG);
        let delta = rng.random_range(1i64..50);
        let phi = rng.random_range(0u32..12) as f64;
        let motif = catalog::by_name(name, delta, phi).unwrap();
        let (two_phase, _) = enumerate_all(&g, &motif);
        let (joined, _) = join_enumerate(&g, &motif);
        assert_eq!(
            normalize(flatten(two_phase)),
            normalize(joined),
            "case {case}: {name} δ={delta} ϕ={phi}"
        );
    }
}

/// Every emitted instance is structurally sound, valid and maximal.
#[test]
fn instances_are_valid_and_maximal() {
    for case in 0..CASES {
        let mut rng = case_rng(0x02, case);
        let g = random_graph(&mut rng, 8, 40);
        let name = pick(&mut rng, &CATALOG);
        let delta = rng.random_range(1i64..50);
        let phi = rng.random_range(0u32..12) as f64;
        let motif = catalog::by_name(name, delta, phi).unwrap();
        let (groups, _) = enumerate_all(&g, &motif);
        for (sm, insts) in &groups {
            check_structural_match(&g, &motif, sm).unwrap_or_else(|e| panic!("case {case}: {e}"));
            for inst in insts {
                check_instance_valid(&g, &motif, sm, inst)
                    .unwrap_or_else(|e| panic!("case {case}: {e}"));
                check_instance_maximal(&g, &motif, inst)
                    .unwrap_or_else(|e| panic!("case {case}: {e}"));
            }
        }
    }
}

/// Per structural match, the algorithm agrees with the exponential
/// brute-force reference (smaller graphs: the reference explodes).
#[test]
fn two_phase_equals_brute_force() {
    for case in 0..CASES {
        let mut rng = case_rng(0x03, case);
        let g = random_graph(&mut rng, 6, 24);
        let name = pick(&mut rng, &["M(3,2)", "M(3,3)"]);
        let delta = rng.random_range(1i64..40);
        let phi = rng.random_range(0u32..8) as f64;
        let motif = catalog::by_name(name, delta, phi).unwrap();
        let matches = find_structural_matches(&g, motif.path());
        let (groups, _) = enumerate_all(&g, &motif);
        for sm in &matches {
            let mut algo: Vec<_> = groups
                .iter()
                .filter(|(m, _)| m == sm)
                .flat_map(|(_, v)| v.iter().map(|i| format!("{:?}", i.edge_sets)))
                .collect();
            let mut brute: Vec<_> = brute_force_instances(&g, &motif, sm)
                .iter()
                .map(|i| format!("{:?}", i.edge_sets))
                .collect();
            algo.sort();
            brute.sort();
            assert_eq!(algo, brute, "case {case}: {name} δ={delta} ϕ={phi}");
        }
    }
}

/// The ablation toggles change work done but never the result set.
#[test]
fn search_options_do_not_change_results() {
    use flowmotif::core::enumerate::{enumerate_with_sink, CollectSink};
    for case in 0..CASES {
        let mut rng = case_rng(0x04, case);
        let g = random_graph(&mut rng, 8, 40);
        let name = pick(&mut rng, &CATALOG);
        let delta = rng.random_range(1i64..50);
        let phi = rng.random_range(0u32..12) as f64;
        let motif = catalog::by_name(name, delta, phi).unwrap();
        let mut reference: Option<Vec<String>> = None;
        for skip in [true, false] {
            for prune in [true, false] {
                let opts = SearchOptions::builder()
                    .skip_redundant_windows(skip)
                    .phi_prefix_pruning(prune)
                    .build();
                let mut sink = CollectSink::default();
                enumerate_with_sink(&g, &motif, opts, &mut sink);
                let norm = normalize(flatten(sink.groups));
                match &reference {
                    None => reference = Some(norm),
                    Some(r) => {
                        assert_eq!(&norm, r, "case {case}: skip={skip} prune={prune}")
                    }
                }
            }
        }
    }
}

/// Parallel drivers agree with the sequential ones.
#[test]
fn parallel_equals_sequential() {
    for case in 0..CASES {
        let mut rng = case_rng(0x05, case);
        let g = random_graph(&mut rng, 10, 50);
        let name = pick(&mut rng, &CATALOG);
        let delta = rng.random_range(1i64..50);
        let phi = rng.random_range(0u32..10) as f64;
        let threads = rng.random_range(1usize..5);
        let motif = catalog::by_name(name, delta, phi).unwrap();
        let (seq, _) = count_instances(&g, &motif);
        let (par, _) = par_count_instances(&g, &motif, threads);
        assert_eq!(seq, par, "case {case}: {name} threads={threads}");
    }
}
