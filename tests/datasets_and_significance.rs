//! Integration tests for the synthetic datasets, the permutation null
//! model, time-prefix sampling, and the significance pipeline — the
//! pieces behind experiments T3, F13 and F14.

mod common;

use common::case_rng;
use flowmotif::prelude::*;
use flowmotif_util::rng::RngExt;

#[test]
fn all_datasets_generate_and_search_end_to_end() {
    for d in Dataset::ALL {
        let g = d.generate(0.15, 3);
        let stats = GraphStats::of(&g);
        assert!(stats.num_interactions > 0, "{d}");
        let motif = catalog::by_name("M(3,2)", d.default_delta(), d.default_phi()).unwrap();
        let (n, search) = count_instances(&g, &motif);
        assert!(search.structural_matches > 0, "{d}");
        // Two-phase and join agree on generated data too.
        let (joined, _) = join_enumerate(&g, &motif);
        assert_eq!(n, joined.len() as u64, "{d}");
    }
}

#[test]
fn propagation_produces_significant_motifs() {
    // The flow-conservation pass is what separates real from permuted
    // data (experiment F14). At modest scale the z-score should be
    // clearly positive for chains on every dataset.
    for d in [Dataset::Bitcoin, Dataset::Facebook] {
        let mg = d.generate_multigraph(0.4, 42);
        let motif = catalog::by_name("M(3,2)", d.default_delta(), d.default_phi()).unwrap();
        let sig =
            assess_motif(&mg, &motif, SignificanceConfig { num_replicas: 8, seed: 9, threads: 2 });
        assert!(
            sig.z_score > 3.0,
            "{d}: z={} real={} mean={}",
            sig.z_score,
            sig.real_count,
            sig.random_mean
        );
        assert_eq!(sig.p_value, 0.0, "{d}");
    }
}

#[test]
fn prefix_samples_nest_and_final_equals_full() {
    let mg = Dataset::Bitcoin.generate_multigraph(0.2, 5);
    let samples = time_prefix_samples(&mg, &Dataset::Bitcoin.prefix_fractions());
    assert_eq!(samples.len(), 5);
    let motif = catalog::by_name("M(3,2)", 600, 5.0).unwrap();
    let mut prev_count = 0u64;
    for s in &samples {
        // Instance counts grow (weakly) with the sample: more data can
        // only add activity.
        let (n, _) = count_instances(&s.graph, &motif);
        assert!(n >= prev_count, "{}: {n} < {prev_count}", s.label);
        prev_count = n;
    }
    let full: TimeSeriesGraph = (&mg).into();
    let (n_full, _) = count_instances(&full, &motif);
    assert_eq!(prev_count, n_full, "final sample == full dataset");
}

/// The permutation null model preserves exactly what §6.3 requires:
/// structure, timestamps, and the multiset of flow values.
#[test]
fn permutation_null_model_invariants() {
    for case in 0..16u64 {
        let mut rng = case_rng(0x21, case);
        let seed = rng.random_range(0u64..500);
        let mg = Dataset::Passenger.generate_multigraph(0.08, 11);
        let r = permute_flows(&mg, seed);
        // skeleton identical
        for (a, b) in mg.interactions().iter().zip(r.interactions()) {
            assert_eq!((a.from, a.to, a.time), (b.from, b.to, b.time), "case {case}");
        }
        // flow multiset identical
        let key = |g: &TemporalMultigraph| {
            let mut v: Vec<u64> = g.interactions().iter().map(|i| i.flow.to_bits()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&mg), key(&r), "case {case}");
        // structural matches identical (flow-agnostic phase P1)
        let motif = catalog::by_name("M(3,3)", 900, 0.0).unwrap();
        let a: TimeSeriesGraph = (&mg).into();
        let b: TimeSeriesGraph = (&r).into();
        assert_eq!(
            find_structural_matches(&a, motif.path()),
            find_structural_matches(&b, motif.path()),
            "case {case}"
        );
        // with ϕ = 0 even the instance count is invariant
        assert_eq!(count_instances(&a, &motif).0, count_instances(&b, &motif).0, "case {case}");
    }
}

/// Generators are deterministic and honour the scale knob.
#[test]
fn generator_scaling() {
    for case in 0..16u64 {
        let mut rng = case_rng(0x22, case);
        let scale = rng.random_range(0.05f64..0.5);
        let a = Dataset::Facebook.generate_multigraph(scale, 1);
        let b = Dataset::Facebook.generate_multigraph(scale, 1);
        assert_eq!(a.interactions().len(), b.interactions().len(), "case {case}");
        let cfg = Dataset::Facebook.config().scaled(scale);
        let ts: TimeSeriesGraph = (&a).into();
        assert_eq!(ts.num_pairs(), cfg.num_pairs, "case {case} scale={scale}");
    }
}

#[test]
fn edge_list_io_round_trips_generated_data() {
    let mg = Dataset::Passenger.generate_multigraph(0.1, 17);
    let mut buf = Vec::new();
    flowmotif::graph::io::write_edge_list(&mg, &mut buf).unwrap();
    let loaded = flowmotif::graph::io::read_edge_list(buf.as_slice()).unwrap().build_multigraph();
    assert_eq!(loaded.num_interactions(), mg.num_interactions());
    assert!((loaded.total_flow() - mg.total_flow()).abs() < 1e-6);
    // Search results identical through the round trip.
    let motif = catalog::by_name("M(3,2)", 900, 2.0).unwrap();
    let a: TimeSeriesGraph = (&mg).into();
    let b: TimeSeriesGraph = (&loaded).into();
    assert_eq!(count_instances(&a, &motif).0, count_instances(&b, &motif).0);
}
