//! Exploration beyond the fixed catalog: run a census over *every* walk
//! motif shape of a given size (FANMOD-style, paper §2), rank the most
//! active vertex groups (§5.1 extensibility), and search a fork-shaped
//! DAG motif (§7 future work) — the "split the money two ways" layering
//! pattern path motifs cannot express.
//!
//! Run with: `cargo run --release --example motif_census`

use flowmotif::prelude::*;

fn main() {
    let g = Dataset::Bitcoin.generate(0.6, 21);
    println!("bitcoin-like network: {}", GraphStats::of(&g));
    let delta = Dataset::Bitcoin.default_delta();
    let phi = Dataset::Bitcoin.default_phi();

    // 1. Census: which 3-edge shapes actually occur with significant
    //    flow? (0-1-2-3 is the chain, 0-1-2-0 the triangle, 0-1-0-2 the
    //    bounce, ...)
    println!("\ncensus of all 3-edge walk shapes (δ={delta}, ϕ={phi}):");
    for row in walk_census(&g, 3, delta, phi) {
        println!(
            "  {:<10} {:>6} instances   ({} structural matches)",
            row.shape.to_string(),
            row.instances,
            row.structural_matches
        );
    }

    // 2. Activity: which vertex groups host the most M(3,2) instances,
    //    and when are they active?
    let motif = catalog::by_name("M(3,2)", delta, phi).unwrap();
    let acts = per_match_activity(&g, &motif);
    println!("\ntop flow corridors for {}:", motif.name());
    for a in acts.iter().take(3) {
        println!(
            "  nodes {:?}: {} instances, best flow {:.1}, active t={}..{}",
            a.structural_match.walk_nodes(&g),
            a.instances,
            a.max_flow,
            a.first_activity.unwrap_or(0),
            a.last_activity.unwrap_or(0)
        );
    }
    // The per-window activity series of the hottest corridor (bucketed).
    if let Some(hot) = acts.first() {
        let series = window_top1_series(&g, &motif, &hot.structural_match, delta);
        println!("  activity timeline of the hottest corridor (bucket = δ):");
        for w in series.iter().take(6) {
            println!("    t={:>6}: best window flow {:.1}", w.bucket_start, w.max_flow);
        }
    }

    // 3. DAG motif: a fan-out 0 -> 1, then 1 -> 2 and 1 -> 3 — both
    //    branches must carry >= ϕ after the inflow arrives, but the two
    //    branches themselves are unordered.
    let fork = DagMotif::new(vec![(0, 1), (1, 2), (1, 3)], delta, phi).unwrap();
    let fork_hits = dag_count(&g, &fork);
    println!("\nfork motif 0->1->{{2,3}}: {fork_hits} instances");

    // Cross-check the DAG machinery against the path algorithm on a
    // walk-shaped motif: both must agree exactly.
    let path_m32 = catalog::by_name("M(3,2)", delta, phi).unwrap();
    let dag_m32 = DagMotif::from_path(path_m32.path(), delta, phi).unwrap();
    let (n_path, _) = count_instances(&g, &path_m32);
    assert_eq!(n_path, dag_count(&g, &dag_m32));
    println!("DAG engine agrees with the path engine on M(3,2): {n_path} instances ✓");
}
