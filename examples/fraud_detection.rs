//! Fraud-detection scenario (the paper's §1 motivation): financial
//! intelligence units look for cyclic transactions and for "smurfing" —
//! many small transfers that aggregate to a large amount within a short
//! window.
//!
//! We plant both patterns into a synthetic bitcoin-like background and
//! show that flow motif search surfaces exactly the planted rings, and
//! that the patterns are statistically significant against the
//! flow-permutation null model.
//!
//! Run with: `cargo run --release --example fraud_detection`

use flowmotif::prelude::*;

/// Background network plus planted fraud patterns.
fn build_network() -> (TemporalMultigraph, Vec<[u32; 3]>) {
    // Background: bitcoin-like synthetic traffic.
    let mut mg = Dataset::Bitcoin.generate_multigraph(0.5, 7);
    let base = mg.num_nodes() as u32;
    let span = mg.time_span().expect("non-empty").1;

    // Plant 5 laundering rings a -> b -> c -> a. Each hop moves 50 units;
    // the middle hop is *smurfed* into five transfers of 10.
    let mut rings = Vec::new();
    for r in 0..5u32 {
        let (a, b, c) = (base + 3 * r, base + 3 * r + 1, base + 3 * r + 2);
        let t0 = (r as i64 + 1) * span / 7;
        mg.push(flowmotif::graph::Interaction::new(a, b, t0, 50.0));
        for i in 0..5 {
            mg.push(flowmotif::graph::Interaction::new(b, c, t0 + 10 + i, 10.0));
        }
        mg.push(flowmotif::graph::Interaction::new(c, a, t0 + 60, 50.0));
        rings.push([a, b, c]);
    }
    (mg, rings)
}

fn main() {
    let (mg, rings) = build_network();
    let g: TimeSeriesGraph = (&mg).into();
    println!("network: {}", GraphStats::of(&g));
    println!("planted rings: {rings:?}\n");

    // Cyclic flow of >= 50 units per hop, completed within 2 minutes.
    // The smurfed hop only clears ϕ because edge-sets AGGREGATE: no
    // single b -> c transfer reaches 50.
    let motif = catalog::by_name("M(3,3)", 120, 50.0).unwrap();
    let (groups, stats) = enumerate_all(&g, &motif);
    println!(
        "{motif}: {} instances out of {} structural matches",
        stats.instances_emitted, stats.structural_matches
    );
    let mut found: Vec<Vec<u32>> = Vec::new();
    for (sm, insts) in &groups {
        for inst in insts {
            let walk = sm.walk_nodes(&g);
            println!("  ring {:?} moved {} units in {} time units", walk, inst.flow, inst.span());
            found.push(walk);
        }
    }
    // Every planted ring is found (as one rotation of its cycle).
    for ring in &rings {
        let hit = found.iter().any(|w| {
            let mut s = w[..3].to_vec();
            s.sort_unstable();
            let mut r = ring.to_vec();
            r.sort_unstable();
            s == r
        });
        assert!(hit, "planted ring {ring:?} not found");
    }
    println!("all planted rings recovered ✓\n");

    // Are >= 50-unit cycles significant, or expected by chance? Compare
    // against 10 flow-permuted replicas (paper §6.3).
    let sig =
        assess_motif(&mg, &motif, SignificanceConfig { num_replicas: 10, seed: 1, threads: 0 });
    println!(
        "significance: real={} vs random mean={:.1} (σ={:.2}) -> z={:.1}, empirical p={}",
        sig.real_count, sig.random_mean, sig.random_std, sig.z_score, sig.p_value
    );
    assert!(sig.real_count >= 5);
    assert_eq!(sig.p_value, 0.0, "planted structure should never arise in permuted flows");
}
