//! Social-influence analysis (the paper's Facebook dataset): bursts of
//! interaction flowing along chains of users suggest information
//! propagation (§1: "groups of users with frequent communication within a
//! short period have high chance to influence each other").
//!
//! The example compares the runtime of the two-phase algorithm with the
//! join baseline on this multi-edge-heavy workload, and checks chain
//! significance — the paper's Fig. 14 finds chains over-represented on
//! Facebook.
//!
//! Run with: `cargo run --release --example influence_chains`

use flowmotif::prelude::*;
use std::time::Instant;

fn main() {
    let mg = Dataset::Facebook.generate_multigraph(0.6, 11);
    let g: TimeSeriesGraph = (&mg).into();
    println!("facebook-like network: {}", GraphStats::of(&g));

    let delta = Dataset::Facebook.default_delta();
    let phi = Dataset::Facebook.default_phi();

    // Influence chains: 3 users relaying >= ϕ interactions within δ.
    let motif = catalog::by_name("M(3,2)", delta, phi).unwrap();

    let t0 = Instant::now();
    let (n_two_phase, _) = count_instances(&g, &motif);
    let t_two_phase = t0.elapsed();

    let t0 = Instant::now();
    let (joined, join_stats) = join_enumerate(&g, &motif);
    let t_join = t0.elapsed();

    assert_eq!(n_two_phase, joined.len() as u64, "algorithms agree");
    println!(
        "\n{} influence chains; two-phase {:.1?} vs join {:.1?} \
         (join materialised {} intermediate sub-instances)",
        n_two_phase,
        t_two_phase,
        t_join,
        join_stats.intermediate_per_level.iter().sum::<u64>(),
    );

    // Longer cascades: how deep does influence chain within one window?
    println!("\ncascade depth at δ = {delta}, ϕ = {phi}:");
    for name in ["M(3,2)", "M(4,3)", "M(5,4)"] {
        let m = catalog::by_name(name, delta, phi).unwrap();
        let (n, _) = count_instances(&g, &m);
        println!("  {:<6} ({} hops): {n}", name, m.num_edges());
    }

    // Significance of chains against the flow-permutation null model.
    let sig =
        assess_motif(&mg, &motif, SignificanceConfig { num_replicas: 10, seed: 5, threads: 0 });
    println!(
        "\nsignificance of M(3,2): real={} random mean={:.1} z={:.2} p={:.2}",
        sig.real_count, sig.random_mean, sig.z_score, sig.p_value
    );

    // Parallel speed-up on the heaviest chain motif.
    let heavy = catalog::by_name("M(5,4)", delta, phi).unwrap();
    let t0 = Instant::now();
    let (seq, _) = count_instances(&g, &heavy);
    let t_seq = t0.elapsed();
    let t0 = Instant::now();
    let (par, _) = par_count_instances(&g, &heavy, 0);
    let t_par = t0.elapsed();
    assert_eq!(seq, par);
    println!("\nM(5,4) on all cores: {t_seq:.1?} sequential vs {t_par:.1?} parallel");
}
