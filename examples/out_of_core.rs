//! Out-of-core search: pack a generated graph into a segment file and
//! run a top-k motif query through the memory-mapped backend.
//!
//! The packed segment is viewed in place through a read-only `mmap`:
//! the process heap holds only the small activity index, while the OS
//! pages topology and event data in on demand — so graphs much larger
//! than RAM stay searchable, and sealed segments can be shared
//! read-only across processes.
//!
//! Run with: `cargo run --example out_of_core`

use flowmotif::datasets::generate;
use flowmotif::graph::io::write_edge_list;
use flowmotif::prelude::*;

fn main() {
    // 1. Generate a Bitcoin-like interaction network and spill it to an
    //    edge list on disk, as a stand-in for a real dump that would
    //    not fit in memory.
    let dir = std::env::temp_dir().join(format!("flowmotif_ooc_example_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let edges = dir.join("edges.txt");
    let g = generate(&Dataset::Bitcoin.config().scaled(2.0), 42);
    write_edge_list(&g, std::io::BufWriter::new(std::fs::File::create(&edges).unwrap())).unwrap();
    drop(g); // from here on, the graph lives on disk only

    // 2. Compile the edge list into a packed segment. The external
    //    merge sort streams the input through bounded sort runs, so
    //    packing memory is O(run buffer), never O(interactions). A
    //    deliberately tiny run buffer shows the multi-run merge path.
    let stats = pack_edge_list(&edges, &dir, 4096).unwrap();
    let segment_bytes =
        std::fs::metadata(flowmotif::graph::segment::segment_path(&dir)).unwrap().len();
    println!(
        "packed {} interactions / {} pairs / {} nodes in {} sorted runs",
        stats.interactions, stats.pairs, stats.nodes, stats.runs
    );

    // 3. Map the segment and run the search pipeline straight off it:
    //    every `GraphStore` consumer (P1 matcher, P2 enumeration,
    //    top-k, DP) works unchanged over the mapped backend.
    let seg = SegmentStore::open(&dir).unwrap();
    let motif = catalog::by_name("M(3,2)", 3600, 0.0).unwrap();
    let (ranked, search) = top_k(&seg, &motif, 3);
    println!(
        "top-{} {} instances over the mapped graph ({} structural matches):",
        ranked.len(),
        motif,
        search.structural_matches
    );
    for (i, r) in ranked.iter().enumerate() {
        println!(
            "  #{} flow {:.3} nodes {:?}",
            i + 1,
            r.instance.flow,
            r.structural_match.walk_nodes(&seg)
        );
    }

    // 4. Memory stats: what stayed on disk vs what the in-memory
    //    backend would have made resident.
    let event_payload = stats.interactions * std::mem::size_of::<Event>() as u64;
    println!("segment on disk (mapped, paged on demand): {} KiB", segment_bytes / 1024);
    println!(
        "event payload the in-memory backend would hold resident: {} KiB",
        event_payload / 1024
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
