//! Passenger-flow analysis (the paper's third dataset): movement chains
//! between taxi zones. Region-to-region chains M(4,3) model multi-leg
//! movement patterns; the example sweeps the time budget δ and contrasts
//! chains with cycles, reproducing the paper's observation that acyclic
//! motifs dominate passenger networks (§6.2.2).
//!
//! Run with: `cargo run --release --example passenger_flows`

use flowmotif::prelude::*;

fn main() {
    // 289 taxi zones, ~3 parallel trips per connected pair, small
    // passenger counts (see DESIGN.md: synthetic stand-in for the NYC
    // yellow-taxi data the paper uses).
    let g = Dataset::Passenger.generate(1.0, 42);
    println!("passenger network: {}", GraphStats::of(&g));

    // How much chained movement (>= 2 passengers per leg) exists within
    // different time budgets?
    let phi = Dataset::Passenger.default_phi();
    println!("\nδ sweep for the 4-zone chain M(4,3), ϕ = {phi}:");
    for delta in Dataset::Passenger.delta_sweep() {
        let motif = catalog::by_name("M(4,3)", delta, phi).unwrap();
        let (n, stats) = count_instances(&g, &motif);
        println!("  δ={delta:>5}: {n:>6} chains ({} windows examined)", stats.windows_processed);
    }

    // Chains vs cycles at the default δ: passenger flows rarely loop.
    let delta = Dataset::Passenger.default_delta();
    println!("\nchains vs cycles at δ = {delta}:");
    for name in ["M(3,2)", "M(3,3)", "M(4,3)", "M(4,4)A", "M(5,4)", "M(5,5)A"] {
        let motif = catalog::by_name(name, delta, phi).unwrap();
        let (n, _) = count_instances(&g, &motif);
        let kind = if motif.path().has_cycle() { "cycle" } else { "chain" };
        println!("  {name:<8} ({kind}): {n}");
    }

    // The busiest corridor: the top-ranked 3-zone chain by passengers.
    let ranking = catalog::by_name("M(3,2)", delta, 0.0).unwrap();
    let (top, _) = top_k(&g, &ranking, 3);
    println!("\nbusiest 3-zone corridors (passengers on the weakest leg):");
    for (i, r) in top.iter().enumerate() {
        println!(
            "  #{}: zones {:?} moved {} passengers within {} time units",
            i + 1,
            r.structural_match.walk_nodes(&g),
            r.instance.flow,
            r.instance.span()
        );
    }
}
