//! Quickstart: build a small interaction network, search a flow motif,
//! rank instances, and find the top-1 via dynamic programming.
//!
//! Run with: `cargo run --example quickstart`

use flowmotif::prelude::*;

fn main() {
    // 1. Build an interaction network. Each interaction is
    //    (from, to, time, flow) — e.g. an account-to-account payment.
    //    This is the running example of the paper (Fig. 2).
    let mut b = GraphBuilder::new();
    b.extend_interactions([
        (2u32, 0u32, 10i64, 10.0), // u3 pays u1 ten units at t=10
        (0, 1, 13, 5.0),           // u1 forwards to u2 in two chunks...
        (0, 1, 15, 7.0),
        (1, 2, 18, 20.0), // ...and u2 closes the cycle back to u3
        (3, 2, 1, 2.0),
        (3, 2, 3, 5.0),
        (3, 0, 11, 10.0),
        (2, 3, 19, 5.0),
        (2, 3, 21, 4.0),
        (1, 3, 23, 7.0),
    ]);
    let g = b.build_time_series_graph();
    println!("graph: {}", GraphStats::of(&g));

    // 2. Describe the pattern: a cyclic flow over three parties (M(3,3)),
    //    completing within δ=10 time units, moving at least ϕ=7 units on
    //    every hop. Multiple transfers on a hop aggregate.
    let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
    println!("searching {motif}");

    // 3. Enumerate all maximal instances (two-phase algorithm, §4).
    let (groups, stats) = enumerate_all(&g, &motif);
    println!(
        "phase P1 found {} structural matches; phase P2 emitted {} instances",
        stats.structural_matches, stats.instances_emitted
    );
    for (sm, instances) in &groups {
        for inst in instances {
            println!(
                "  cycle over nodes {:?}, flow {}, span {}: {}",
                sm.walk_nodes(&g),
                inst.flow,
                inst.span(),
                inst.display(&g)
            );
        }
    }

    // 4. Rank instead of filtering: top-k by flow with ϕ = 0 (§5).
    let ranking = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
    let (ranked, _) = top_k(&g, &ranking, 3);
    println!("top-{} instances by flow:", ranked.len());
    for (i, r) in ranked.iter().enumerate() {
        println!("  #{}: flow {}", i + 1, r.instance.flow);
    }

    // 5. Top-1 via the dynamic-programming module (§5.1) — same answer,
    //    less work per window.
    let (best, _) = dp_top1(&g, &ranking);
    let (_, inst) = best.expect("the graph has instances");
    println!("DP top-1 flow: {}", inst.flow);
    assert_eq!(inst.flow, ranked[0].instance.flow);
}
