//! A miniature resident motif-search service: payments stream in,
//! a sliding window keeps the last day of activity, and fraud-style
//! queries run periodically without ever rebuilding the graph.
//!
//! Run with: `cargo run --release --example streaming_service`

use flowmotif::prelude::*;
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};

const HOUR: i64 = 3_600;
const DAY: i64 = 24 * HOUR;

/// Emits one hour of synthetic payment traffic: background transfers
/// plus, in some hours, a planted 3-cycle moving a large amount.
fn one_hour(rng: &mut StdRng, start: i64, plant_ring: bool) -> Vec<(u32, u32, i64, f64)> {
    let mut out = Vec::new();
    for _ in 0..400 {
        let u = rng.random_range(0..3_000u32);
        let mut v = rng.random_range(0..3_000u32);
        while v == u {
            v = rng.random_range(0..3_000u32);
        }
        out.push((u, v, start + rng.random_range(0..HOUR), rng.random_range(1..50) as f64));
    }
    if plant_ring {
        let a = rng.random_range(3_000..3_100u32);
        let t = start + rng.random_range(0..HOUR - 600);
        out.push((a, a + 1, t, 900.0));
        out.push((a + 1, a + 2, t + 200, 880.0));
        out.push((a + 2, a, t + 400, 860.0));
    }
    out.sort_by_key(|&(_, _, t, _)| t);
    out
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // Retain one day of traffic; evict in ~3-hour sweeps.
    let mut engine = QueryEngine::new().with_window(SlidingWindow::with_slack(DAY, 3 * HOUR));
    // Fraud query: a cycle moving >= 500 per hop within 15 minutes.
    let ring = catalog::by_name("M(3,3)", 900, 500.0).unwrap();

    println!("hour | resident | evicted | rings in last 6h");
    for hour in 0..48 {
        let start = hour * HOUR;
        let batch = one_hour(&mut rng, start, hour % 7 == 3);
        engine.ingest(batch).unwrap();

        // Every 6 hours, scan the recent window for laundering rings.
        if hour % 6 == 5 {
            let wm = engine.stats().watermark.unwrap();
            let res = engine.query(&ring, Some(TimeWindow::new(wm - 6 * HOUR, wm)));
            let s = engine.stats();
            println!(
                "{:4} | {:8} | {:7} | {}",
                hour,
                s.interactions,
                s.evicted,
                res.num_instances()
            );
            let g = engine.graph();
            for (sm, insts) in &res.groups {
                for inst in insts {
                    println!(
                        "       ring {:?} moved {:.0} within {}s",
                        sm.walk_nodes(g),
                        inst.flow,
                        inst.span()
                    );
                }
            }
        }
    }
    let s = engine.stats();
    println!("final: {s}");
    assert!(s.evicted > 0, "the sliding window must have evicted something");
    assert!((s.interactions as i64) < 30 * 400 + 100, "retention stays near one day");
}
